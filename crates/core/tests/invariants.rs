//! Invariants over the paper's §3/§4 algorithms.
//!
//! Deterministic seeded sweeps (always on) plus the original `proptest`
//! suite behind the `proptest` feature (needs the dev-dependency
//! restored — see crates/netsim/Cargo.toml).

use netsim::{Pcg32, SimDuration, SimTime};
use ppt_core::{
    initial_window_case1, initial_window_case2, AlphaEstimator, LcpAckClock, LcpAction, LcpLoop,
    LoopTrigger, MinTracker, MirrorTagger, PptConfig,
};

/// α is always in [0, 1] no matter the feedback sequence.
#[test]
fn alpha_stays_in_unit_interval_seeded() {
    for seed in 0..16u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut a = AlphaEstimator::default();
        let rounds = 1 + rng.gen_index(199);
        for _ in 0..rounds {
            let acked = rng.gen_range(1000);
            let marked = rng.gen_range(1000).min(acked);
            a.on_ack(acked, marked);
            let alpha = a.end_of_round();
            assert!((0.0..=1.0).contains(&alpha), "seed {seed}: alpha={alpha}");
            assert!((0.5..=1.0).contains(&a.cut_factor()), "seed {seed}");
        }
    }
}

/// Eq. 2 never asks for more than half of (the scaled) W_max, and is
/// monotone: a lower α_min yields a bigger initial window.
#[test]
fn eq2_bounds_and_monotonicity_seeded() {
    let mut rng = Pcg32::seed_from_u64(0);
    for _ in 0..500 {
        let wmax = 1 + rng.gen_range(100_000_000 - 1);
        let a1 = rng.next_f64();
        let a2 = rng.next_f64();
        let i1 = initial_window_case2(a1, wmax);
        let i2 = initial_window_case2(a2, wmax);
        assert!(i1 <= wmax / 2 + 1);
        if a1 < a2 {
            assert!(i1 >= i2, "lower alpha must not shrink the window");
        }
    }
}

/// Case-1 window never exceeds the BDP.
#[test]
fn case1_bounded_by_bdp_seeded() {
    let mut rng = Pcg32::seed_from_u64(1);
    for _ in 0..500 {
        let bdp = rng.gen_range(10_000_000);
        let iw = rng.gen_range(10_000_000);
        assert!(initial_window_case1(bdp, iw) <= bdp);
    }
}

/// Tagging monotonicity: priorities never *improve* as a flow sends more
/// bytes, and the LCP mirror never crosses into the HCP band.
#[test]
fn tagging_is_monotone_and_banded_seeded() {
    let mut rng = Pcg32::seed_from_u64(2);
    for _ in 0..500 {
        let sent_a = rng.gen_range(100_000_000);
        let delta = rng.gen_range(100_000_000);
        let large = rng.gen_range(2) == 1;
        let t = MirrorTagger::default();
        let before = t.hcp_priority(large, sent_a);
        let after = t.hcp_priority(large, sent_a + delta);
        assert!(after >= before, "priority improved with bytes sent");
        assert!(before <= 3);
        let lcp = t.lcp_priority(large, sent_a);
        assert!((4..=7).contains(&lcp));
        assert_eq!(lcp, before + 4);
    }
}

/// The EWD clock emits exactly floor(n/2) ACKs for n data packets and
/// ECE is set iff a CE mark arrived within the pair.
#[test]
fn ewd_clock_rate_halving_invariant_seeded() {
    for seed in 0..16u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let marks: Vec<bool> = (0..rng.gen_index(300)).map(|_| rng.gen_range(2) == 1).collect();
        let mut clock = LcpAckClock::new();
        let mut acks = 0;
        let mut pending_ce = false;
        for &ce in &marks {
            pending_ce |= ce;
            if let Some(ece) = clock.on_data(ce) {
                assert_eq!(ece, pending_ce, "seed {seed}");
                pending_ce = false;
                acks += 1;
            }
        }
        assert_eq!(acks, marks.len() / 2, "seed {seed}");
    }
}

/// MinTracker: over any sequence, the number of triggers is at most the
/// number of strict descents + 1, and a constant tail never triggers.
#[test]
fn min_tracker_trigger_budget_seeded() {
    for seed in 0..16u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let values: Vec<f64> = (0..1 + rng.gen_index(99)).map(|_| rng.next_f64()).collect();
        let mut m = MinTracker::new(16);
        let mut triggers = 0;
        for &v in &values {
            if m.push(v) {
                triggers += 1;
            }
        }
        let descents = values.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(triggers <= descents + 1, "seed {seed}: triggers={triggers} descents={descents}");
        // Constant tail: repeating the last value can never trigger again
        // (ties are not strict minima).
        let tail = *values.last().expect("generated at least one value");
        for _ in 0..32 {
            assert!(!m.push(tail), "seed {seed}: tie triggered");
        }
    }
}

/// LCP loop expiry is exactly the 2-RTT silence rule.
#[test]
fn lcp_expiry_is_two_rtts_seeded() {
    let mut rng = Pcg32::seed_from_u64(3);
    for _ in 0..500 {
        let last_ack_ns = rng.gen_range(10_000_000);
        let probe_ns = rng.gen_range(30_000_000);
        let rtt = SimDuration::from_micros(80);
        let mut l = LcpLoop::open(LoopTrigger::FlowStart, 10_000, SimTime::ZERO);
        l.on_low_priority_ack(false, SimTime(last_ack_ns));
        let probe = SimTime(last_ack_ns.saturating_add(probe_ns));
        let expired = l.is_expired(probe, rtt);
        assert_eq!(expired, probe_ns >= 2 * 80_000);
    }
}

#[test]
fn ecn_thresholds_scale_with_environment() {
    // Eq. 3 sanity across the paper's three fabrics.
    for (gbps, rtt_us) in [(10u64, 80u64), (40, 12), (100, 12)] {
        let cfg = PptConfig::new(netsim::Rate::gbps(gbps), SimDuration::from_micros(rtt_us));
        let (hi, lo) = cfg.ecn_thresholds();
        assert!(lo < hi, "{gbps}G: K_low must be below K_high");
        let bdp = cfg.bdp_bytes();
        assert!(hi < bdp, "{gbps}G: K_high={hi} must be a fraction of BDP={bdp}");
    }
}

#[test]
fn constant_alpha_sequence_triggers_once() {
    let mut m = MinTracker::new(16);
    let mut triggers = 0;
    for _ in 0..100 {
        if m.push(0.25) {
            triggers += 1;
        }
    }
    assert_eq!(triggers, 1, "steady state must not re-trigger");
}

#[test]
fn ignored_ece_acks_still_count_for_liveness() {
    // An all-ECE stream keeps the loop alive (it is receiving feedback)
    // but never clocks new packets.
    let rtt = SimDuration::from_micros(80);
    let mut l = LcpLoop::open(LoopTrigger::AlphaMinimum, 10_000, SimTime::ZERO);
    for i in 1..10u64 {
        let t = SimTime(i * 50_000);
        assert_eq!(l.on_low_priority_ack(true, t), LcpAction::Ignore);
        assert!(!l.is_expired(t, rtt));
    }
    let (total, ece) = l.ack_counts();
    assert_eq!((total, ece), (9, 9));
}

/// The original property-based suite. Requires the `proptest` feature
/// *and* the `proptest` dev-dependency restored in Cargo.toml.
#[cfg(feature = "proptest")]
mod property_based {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// α is always in [0, 1] no matter the feedback sequence.
        #[test]
        fn alpha_stays_in_unit_interval(rounds in proptest::collection::vec((0u64..1000, 0u64..1000), 1..200)) {
            let mut a = AlphaEstimator::default();
            for (acked, marked_raw) in rounds {
                let marked = marked_raw.min(acked);
                a.on_ack(acked, marked);
                let alpha = a.end_of_round();
                prop_assert!((0.0..=1.0).contains(&alpha), "alpha={alpha}");
                prop_assert!((0.5..=1.0).contains(&a.cut_factor()));
            }
        }

        /// Eq. 2 never asks for more than half of (the scaled) W_max, and
        /// is monotone: a lower α_min yields a bigger initial window.
        #[test]
        fn eq2_bounds_and_monotonicity(wmax in 1u64..100_000_000, a1 in 0.0f64..1.0, a2 in 0.0f64..1.0) {
            let i1 = initial_window_case2(a1, wmax);
            let i2 = initial_window_case2(a2, wmax);
            prop_assert!(i1 <= wmax / 2 + 1);
            if a1 < a2 {
                prop_assert!(i1 >= i2, "lower alpha must not shrink the window");
            }
        }

        /// Case-1 window never exceeds the BDP.
        #[test]
        fn case1_bounded_by_bdp(bdp in 0u64..10_000_000, iw in 0u64..10_000_000) {
            prop_assert!(initial_window_case1(bdp, iw) <= bdp);
        }

        /// Tagging monotonicity: priorities never *improve* as a flow
        /// sends more bytes, and the LCP mirror never crosses into the
        /// HCP band.
        #[test]
        fn tagging_is_monotone_and_banded(
            sent_a in 0u64..100_000_000,
            delta in 0u64..100_000_000,
            large in proptest::bool::ANY,
        ) {
            let t = MirrorTagger::default();
            let before = t.hcp_priority(large, sent_a);
            let after = t.hcp_priority(large, sent_a + delta);
            prop_assert!(after >= before, "priority improved with bytes sent");
            prop_assert!(before <= 3);
            let lcp = t.lcp_priority(large, sent_a);
            prop_assert!((4..=7).contains(&lcp));
            prop_assert_eq!(lcp, before + 4);
        }

        /// The EWD clock emits exactly floor(n/2) ACKs for n data packets
        /// and ECE is set iff a CE mark arrived within the pair.
        #[test]
        fn ewd_clock_rate_halving_invariant(marks in proptest::collection::vec(proptest::bool::ANY, 0..300)) {
            let mut clock = LcpAckClock::new();
            let mut acks = 0;
            let mut pending_ce = false;
            for &ce in &marks {
                pending_ce |= ce;
                if let Some(ece) = clock.on_data(ce) {
                    prop_assert_eq!(ece, pending_ce);
                    pending_ce = false;
                    acks += 1;
                }
            }
            prop_assert_eq!(acks, marks.len() / 2);
        }

        /// MinTracker: over any sequence, the number of triggers is at
        /// most the number of strict descents + 1, and a constant tail
        /// never triggers.
        #[test]
        fn min_tracker_trigger_budget(values in proptest::collection::vec(0.0f64..1.0, 1..100)) {
            let mut m = MinTracker::new(16);
            let mut triggers = 0;
            for &v in &values {
                if m.push(v) {
                    triggers += 1;
                }
            }
            let descents = values.windows(2).filter(|w| w[1] < w[0]).count();
            prop_assert!(triggers <= descents + 1, "triggers={triggers} descents={descents}");
            let tail = *values.last().unwrap();
            for _ in 0..32 {
                prop_assert!(!m.push(tail), "tie triggered");
            }
        }

        /// LCP loop expiry is exactly the 2-RTT silence rule.
        #[test]
        fn lcp_expiry_is_two_rtts(last_ack_ns in 0u64..10_000_000, probe_ns in 0u64..30_000_000) {
            let rtt = SimDuration::from_micros(80);
            let mut l = LcpLoop::open(LoopTrigger::FlowStart, 10_000, SimTime::ZERO);
            l.on_low_priority_ack(false, SimTime(last_ack_ns));
            let probe = SimTime(last_ack_ns.saturating_add(probe_ns));
            let expired = l.is_expired(probe, rtt);
            prop_assert_eq!(expired, probe_ns >= 2 * 80_000);
        }
    }
}
