#!/bin/bash
# Regenerate every table and figure; outputs land in results/.
# Set SKIP_EXISTING=1 to keep already-present results.
set -u
BINS=$(ls crates/bench/src/bin | sed 's/\.rs$//')
cargo build --release -q -p bench
for b in $BINS; do
  if [ "${SKIP_EXISTING:-0}" = "1" ] && [ -s "results/$b.txt" ]; then
    echo "=== skipping $b (exists) ==="
    continue
  fi
  echo "=== running $b ==="
  timeout 1500 "target/release/$b" > "results/$b.txt" 2>&1
  echo "    exit=$?"
done
echo ALL DONE
