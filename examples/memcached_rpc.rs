//! A Memcached-style RPC workload (Facebook's W1 from the Homa paper):
//! every flow is under 100 KB and >70 % are under 1 000 B. The paper's
//! §6.3.2 shows PPT beating both reactive and proactive transports here,
//! because Homa/Aeolus blast line-rate bursts that collide, NDP wastes the
//! first RTT, and DCTCP/RC3 can't use priorities.
//!
//! ```sh
//! cargo run --release --example memcached_rpc
//! ```

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn main() {
    let topo = TopoKind::Star { n: 12, rate_gbps: 10, delay_us: 20 };
    let spec =
        WorkloadSpec::new(SizeDistribution::memcached_w1(), 0.5, topo.edge_rate(), 2_000, 23);
    let flows = all_to_all(topo.hosts(), &spec);

    println!("Memcached W1 (all flows <=100KB, >70% <1KB), 12 hosts, load 0.5\n");
    println!("{:<12} {:>12} {:>12} {:>12}", "scheme", "avg FCT(us)", "p99 FCT(us)", "completed");
    for scheme in
        [Scheme::Ppt, Scheme::Dctcp, Scheme::Rc3, Scheme::Homa, Scheme::Aeolus, Scheme::Ndp]
    {
        let name = scheme.name();
        let outcome = run_experiment(&Experiment::new(topo, scheme, flows.clone()));
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>11.1}%",
            name,
            outcome.fct.small_avg_us(),
            outcome.fct.small_p99_us(),
            outcome.completion_ratio * 100.0
        );
    }
}
