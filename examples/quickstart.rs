//! Quickstart: run PPT against DCTCP on a small shared-bottleneck network
//! and print the flow-completion-time summary for each.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn main() {
    // An 8-host, 10 Gbps single-switch network (a mini version of the
    // paper's CloudLab testbed).
    let topo = TopoKind::Star { n: 8, rate_gbps: 10, delay_us: 20 };

    // 300 Web-Search-distributed flows at 50% network load.
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 300, 7);
    let flows = all_to_all(topo.hosts(), &spec);

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "scheme", "overall(us)", "small avg", "small p99", "large avg", "completed"
    );
    for scheme in [Scheme::Dctcp, Scheme::Ppt] {
        let name = scheme.name();
        let outcome = run_experiment(&Experiment::new(topo, scheme, flows.clone()));
        let s = outcome.fct.summary();
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>9.1}%",
            name,
            s.overall_avg_us,
            s.small_avg_us,
            s.small_p99_us,
            s.large_avg_us,
            outcome.completion_ratio * 100.0
        );
    }
    println!("\nPPT should show a visibly lower overall average FCT than DCTCP:");
    println!("its low-priority loop fills the bandwidth DCTCP leaves on the table.");
}
