//! Load sweep on the Web Search workload: how PPT's advantage over DCTCP
//! evolves as the network load grows (the x-axis of Figs 8–9).
//!
//! ```sh
//! cargo run --release --example websearch_loadsweep
//! ```

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn main() {
    let topo = TopoKind::Star { n: 10, rate_gbps: 10, delay_us: 20 };
    let n_flows = 400;

    println!("Web Search workload, 10 hosts, overall average FCT (us) by load\n");
    println!("{:<6} {:>12} {:>12} {:>10}", "load", "DCTCP", "PPT", "PPT gain");
    for &load in &[0.3, 0.5, 0.7] {
        let spec =
            WorkloadSpec::new(SizeDistribution::web_search(), load, topo.edge_rate(), n_flows, 99);
        let flows = all_to_all(topo.hosts(), &spec);
        let dctcp = run_experiment(&Experiment::new(topo, Scheme::Dctcp, flows.clone()));
        let ppt = run_experiment(&Experiment::new(topo, Scheme::Ppt, flows.clone()));
        let d = dctcp.fct.overall_avg_us();
        let p = ppt.fct.overall_avg_us();
        println!("{:<6.1} {:>12.1} {:>12.1} {:>9.1}%", load, d, p, (1.0 - p / d) * 100.0);
    }
    println!("\nThe gain shrinks as load rises: less spare bandwidth to harvest.");
}
