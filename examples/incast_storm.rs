//! Incast storm: N synchronized senders hit one receiver (the classic
//! partition-aggregate pattern). Reproduces the §6.3.2 robustness story:
//! PPT falls back to DCTCP-like behaviour when there is no spare
//! bandwidth, while Homa's line-rate bursts pay for packet losses.
//!
//! ```sh
//! cargo run --release --example incast_storm
//! ```

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::incast_burst;

fn main() {
    println!("Synchronized incast: N senders x 64KB each into one 10G host\n");
    println!("{:<10} {:>6} {:>14} {:>12} {:>10}", "scheme", "N", "avg FCT (us)", "drops", "trims");
    for &n in &[8usize, 16, 32] {
        let topo = TopoKind::Star { n: n + 1, rate_gbps: 10, delay_us: 20 };
        let flows = incast_burst(n, 64_000, 100);
        for scheme in [Scheme::Ppt, Scheme::Dctcp, Scheme::Homa, Scheme::Ndp] {
            let name = scheme.name();
            let outcome = run_experiment(&Experiment::new(topo, scheme, flows.clone()));
            println!(
                "{:<10} {:>6} {:>14.1} {:>12} {:>10}",
                name,
                n,
                outcome.fct.overall_avg_us(),
                outcome.counters.dropped,
                outcome.counters.trimmed,
            );
        }
        println!();
    }
}
