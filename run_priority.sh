#!/bin/bash
set -u
ORDER="fig12_13_largescale fig21_memcached fig15_ablation fig16_ablation fig17_ablation fig18_ablation fig14_delay_based fig20_ppt_util fig19_cpu_overhead fig25_pias_hpcc fig26_nonoversub fig23_incast fig24_rc3_buffer fig27_sendbuf fig22_100_400g fig10_11_testbed_14to1 fig08_09_testbed_15to15 fig28_buffer_occupancy fig29_transfer_efficiency table1_comparison table2_workloads table3_params table4_5_loc"
for b in $ORDER; do
  if [ -s "results/$b.txt" ]; then echo "=== skip $b ==="; continue; fi
  echo "=== running $b ==="
  timeout 1200 "target/release/$b" > "results/$b.txt" 2>&1
  echo "    exit=$?"
done
echo ALL DONE
