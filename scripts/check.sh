#!/usr/bin/env sh
# One-shot hygiene gate: formatting, clippy, simlint, then tier-1.
# Usage: scripts/check.sh  (from anywhere inside the workspace)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> simlint (json gate, deterministic output, baseline ratchet)"
LINT_TMP="${TMPDIR:-/tmp}/simlint-gate.$$"
mkdir -p "$LINT_TMP"
# The gate itself: fails on fresh violations, baseline regressions or
# stale baseline entries.
cargo run -q -p simlint -- --format json > "$LINT_TMP/pass1.json"
# Machine-readable output must be byte-identical across runs.
cargo run -q -p simlint -- --format json > "$LINT_TMP/pass2.json"
cmp "$LINT_TMP/pass1.json" "$LINT_TMP/pass2.json"

echo "==> simlint rule table vs DESIGN.md §12"
cargo run -q -p simlint -- --list-rules > "$LINT_TMP/rules.txt"
while read -r rule_id _; do
    grep -q "\`$rule_id\`" DESIGN.md || {
        echo "check.sh: rule \`$rule_id\` missing from DESIGN.md §12" >&2
        exit 1
    }
done < "$LINT_TMP/rules.txt"
rm -rf "$LINT_TMP"

echo "==> tier-1: build + tests"
cargo build --release
cargo test -q

echo "==> pptlab trace smoke (byte-identical reruns)"
TRACE_TMP="${TMPDIR:-/tmp}/pptlab-trace-smoke.$$"
mkdir -p "$TRACE_TMP/a" "$TRACE_TMP/b"
./target/release/pptlab trace --schemes ppt --topo star:4:10:20 --workload websearch \
    --flows 40 --seed 42 --out "$TRACE_TMP/a" > /dev/null
./target/release/pptlab trace --schemes ppt --topo star:4:10:20 --workload websearch \
    --flows 40 --seed 42 --out "$TRACE_TMP/b" > /dev/null
cmp "$TRACE_TMP/a/events.jsonl" "$TRACE_TMP/b/events.jsonl"
cmp "$TRACE_TMP/a/metrics.json" "$TRACE_TMP/b/metrics.json"
test -s "$TRACE_TMP/a/events.jsonl"

echo "==> queue equivalence smoke (calendar vs heap byte-identity)"
# The calendar queue is the default; the BinaryHeap oracle must produce
# the exact same event stream and metrics on the pinned golden scenario
# (DESIGN.md §10.1). A single reordered same-tick event breaks the cmp.
mkdir -p "$TRACE_TMP/heap"
PPT_QUEUE=heap ./target/release/pptlab trace --schemes ppt --topo star:4:10:20 \
    --workload websearch --flows 40 --seed 42 --out "$TRACE_TMP/heap" > /dev/null
cmp "$TRACE_TMP/a/events.jsonl" "$TRACE_TMP/heap/events.jsonl"
cmp "$TRACE_TMP/a/metrics.json" "$TRACE_TMP/heap/metrics.json"

echo "==> simsan golden replay (sanitized run byte-identical, zero violations)"
# Zero observer effect (DESIGN.md §13.3): the same traced run with the
# runtime sanitizer on must reproduce the unsanitized stream byte for
# byte, and a san_violation in the stream would itself break the cmp.
mkdir -p "$TRACE_TMP/san"
PPT_SANITIZE=1 ./target/release/pptlab trace --schemes ppt --topo star:4:10:20 \
    --workload websearch --flows 40 --seed 42 --out "$TRACE_TMP/san" > /dev/null
cmp "$TRACE_TMP/a/events.jsonl" "$TRACE_TMP/san/events.jsonl"
cmp "$TRACE_TMP/a/metrics.json" "$TRACE_TMP/san/metrics.json"
if grep -q san_violation "$TRACE_TMP/san/events.jsonl"; then
    echo "check.sh: sanitized golden replay reported a san_violation" >&2
    exit 1
fi
rm -rf "$TRACE_TMP"

echo "==> sweep smoke (serial vs parallel byte-identity)"
SWEEP_TMP="${TMPDIR:-/tmp}/pptlab-sweep-smoke.$$"
mkdir -p "$SWEEP_TMP"
./target/release/pptlab sweep --schemes ppt,dctcp --topo star:5:10:20 --workload websearch \
    --loads 0.3,0.6 --seeds 42,7 --flows 40 --jobs 1 --json > "$SWEEP_TMP/serial.jsonl"
./target/release/pptlab sweep --schemes ppt,dctcp --topo star:5:10:20 --workload websearch \
    --loads 0.3,0.6 --seeds 42,7 --flows 40 --jobs 4 --json > "$SWEEP_TMP/jobs4.jsonl"
cmp "$SWEEP_TMP/serial.jsonl" "$SWEEP_TMP/jobs4.jsonl"
test -s "$SWEEP_TMP/serial.jsonl"
rm -rf "$SWEEP_TMP"

echo "==> fault smoke (fault schedule byte-identity, serial vs parallel)"
FAULT_TMP="${TMPDIR:-/tmp}/pptlab-fault-smoke.$$"
mkdir -p "$FAULT_TMP/a" "$FAULT_TMP/b"
./target/release/pptlab faults --schemes ppt,dctcp --topo star:5:10:20 --workload websearch \
    --flows 40 --seed 42 --faults loss=0.01,seed=7,down:0:100:600 \
    --jobs 1 --out "$FAULT_TMP/a" > "$FAULT_TMP/serial.jsonl"
./target/release/pptlab faults --schemes ppt,dctcp --topo star:5:10:20 --workload websearch \
    --flows 40 --seed 42 --faults loss=0.01,seed=7,down:0:100:600 \
    --jobs 4 --out "$FAULT_TMP/b" > "$FAULT_TMP/jobs4.jsonl"
cmp "$FAULT_TMP/serial.jsonl" "$FAULT_TMP/jobs4.jsonl"
for f in "$FAULT_TMP/a/"*.events.jsonl; do
    cmp "$f" "$FAULT_TMP/b/$(basename "$f")"
done
test -s "$FAULT_TMP/serial.jsonl"
rm -rf "$FAULT_TMP"

echo "==> PFC + powertcp smoke (byte-identity for the new switch mode and scheme)"
PFC_TMP="${TMPDIR:-/tmp}/pptlab-pfc-smoke.$$"
mkdir -p "$PFC_TMP/a" "$PFC_TMP/b"
# compare under --switch pfc: same run, serial vs 4 workers, must agree
# byte for byte (pause/resume order is part of the event schedule).
./target/release/pptlab compare --schemes ppt,powertcp --topo star:5:10:20 \
    --workload websearch --flows 40 --seed 42 --switch pfc --jobs 1 --json \
    > "$PFC_TMP/serial.json"
./target/release/pptlab compare --schemes ppt,powertcp --topo star:5:10:20 \
    --workload websearch --flows 40 --seed 42 --switch pfc --jobs 4 --json \
    > "$PFC_TMP/jobs4.json"
cmp "$PFC_TMP/serial.json" "$PFC_TMP/jobs4.json"
test -s "$PFC_TMP/serial.json"
# powertcp trace: rerun byte-identity for the INT-driven transport.
./target/release/pptlab trace --schemes powertcp --topo star:4:10:20 --workload websearch \
    --flows 40 --seed 42 --out "$PFC_TMP/a" > /dev/null
./target/release/pptlab trace --schemes powertcp --topo star:4:10:20 --workload websearch \
    --flows 40 --seed 42 --out "$PFC_TMP/b" > /dev/null
cmp "$PFC_TMP/a/events.jsonl" "$PFC_TMP/b/events.jsonl"
cmp "$PFC_TMP/a/metrics.json" "$PFC_TMP/b/metrics.json"
test -s "$PFC_TMP/a/events.jsonl"
rm -rf "$PFC_TMP"

echo "==> telemetry smoke (report byte-identical across reruns; goldens untouched)"
TELEM_TMP="${TMPDIR:-/tmp}/pptlab-telemetry-smoke.$$"
mkdir -p "$TELEM_TMP/a" "$TELEM_TMP/b" "$TELEM_TMP/t" "$TELEM_TMP/plain"
# The report pipeline (sampler -> series analysis -> histograms -> JSON)
# must be a pure function of simulated state: two identical invocations,
# byte-compared (DESIGN.md §14.2).
./target/release/pptlab report --schemes ppt,dctcp --topo star:5:10:20 --workload websearch \
    --flows 40 --seed 42 --telemetry 10us --json --out "$TELEM_TMP/a" > "$TELEM_TMP/a.jsonl"
./target/release/pptlab report --schemes ppt,dctcp --topo star:5:10:20 --workload websearch \
    --flows 40 --seed 42 --telemetry 10us --json --out "$TELEM_TMP/b" > "$TELEM_TMP/b.jsonl"
cmp "$TELEM_TMP/a.jsonl" "$TELEM_TMP/b.jsonl"
for f in "$TELEM_TMP/a/"*.report.json "$TELEM_TMP/a/"*.telemetry.jsonl; do
    cmp "$f" "$TELEM_TMP/b/$(basename "$f")"
done
test -s "$TELEM_TMP/a.jsonl"
# Arming the sampler must not move a byte of the trace golden.
./target/release/pptlab trace --schemes ppt --topo star:4:10:20 --workload websearch \
    --flows 40 --seed 42 --telemetry 10us --out "$TELEM_TMP/t" > /dev/null
./target/release/pptlab trace --schemes ppt --topo star:4:10:20 --workload websearch \
    --flows 40 --seed 42 --out "$TELEM_TMP/plain" > /dev/null
cmp "$TELEM_TMP/t/events.jsonl" "$TELEM_TMP/plain/events.jsonl"
rm -rf "$TELEM_TMP"

echo "==> engine perf smoke (appends to BENCH_engine.json)"
BENCH_ENGINE_PHASE=powertcp BENCH_ENGINE_SCHEME=powertcp ./target/release/bench_engine

echo "check.sh: all green"
