#!/usr/bin/env sh
# One-shot hygiene gate: formatting, clippy, simlint, then tier-1.
# Usage: scripts/check.sh  (from anywhere inside the workspace)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> simlint"
cargo run -q -p simlint

echo "==> tier-1: build + tests"
cargo build --release
cargo test -q

echo "==> pptlab trace smoke (byte-identical reruns)"
TRACE_TMP="${TMPDIR:-/tmp}/pptlab-trace-smoke.$$"
mkdir -p "$TRACE_TMP/a" "$TRACE_TMP/b"
./target/release/pptlab trace --schemes ppt --topo star:4:10:20 --workload websearch \
    --flows 40 --seed 42 --out "$TRACE_TMP/a" > /dev/null
./target/release/pptlab trace --schemes ppt --topo star:4:10:20 --workload websearch \
    --flows 40 --seed 42 --out "$TRACE_TMP/b" > /dev/null
cmp "$TRACE_TMP/a/events.jsonl" "$TRACE_TMP/b/events.jsonl"
cmp "$TRACE_TMP/a/metrics.json" "$TRACE_TMP/b/metrics.json"
test -s "$TRACE_TMP/a/events.jsonl"
rm -rf "$TRACE_TMP"

echo "check.sh: all green"
