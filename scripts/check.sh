#!/usr/bin/env sh
# One-shot hygiene gate: formatting, clippy, simlint, then tier-1.
# Usage: scripts/check.sh  (from anywhere inside the workspace)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> simlint"
cargo run -q -p simlint

echo "==> tier-1: build + tests"
cargo build --release
cargo test -q

echo "check.sh: all green"
