//! simsan selftest suite: every corruption class the runtime invariant
//! sanitizer (DESIGN.md §13) promises to catch must actually be caught —
//! with the right violation kind — and a fully sanitized run must be
//! byte-identical to an unsanitized one (zero observer effect).
//!
//! The corruption hooks are compiled behind netsim's `simsan-selftest`
//! feature (enabled here via ppt's dev-dependencies); release builds
//! never contain them.

use ppt::harness::{
    run_experiment_traced, run_experiment_traced_with, run_experiment_with, Experiment, FaultSpec,
    Scheme, TopoKind,
};
use ppt::netsim::{HostId, RunLimits, SanLevel, SanViolation, Simulator, StopReason};
use ppt::trace::SanCheck;
use ppt::transports::Proto;
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

// Small on purpose: this suite runs ~36 full experiments (two per scheme
// for byte-identity, two per corruption class) on a debug build, so the
// scenario is sized to still exercise queue contention and ECN marking at
// load 0.5 while keeping the whole file in tier-1 time budget.
fn small_exp(scheme: Scheme, seed: u64) -> Experiment {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 15, seed);
    Experiment::new(topo, scheme, all_to_all(topo.hosts(), &spec))
}

/// Run a small PPT experiment with the sanitizer on at its default
/// per-epoch cadence, verify the clean run is violation-free, corrupt the
/// quiescent simulator through a selftest hook, run again, and return what
/// the sanitizer reported. Per-epoch is enough for every corruption class:
/// the pop-path checks (tie-break, phantom TxDone) observe every event
/// regardless of cadence, and the ledger classes are caught by the
/// end-of-run audit that every level performs.
fn corrupted_run(
    with_faults: bool,
    corrupt: impl FnOnce(&mut Simulator<Proto>),
) -> (StopReason, Vec<SanViolation>) {
    let mut exp = small_exp(Scheme::Ppt, 11);
    if with_faults {
        exp = exp.with_faults(FaultSpec::new(3).with_data_loss(0.01));
    }
    let outcome = run_experiment_with(&exp, |t| t.sim.set_sanitizer(SanLevel::PerEpoch));
    assert_eq!(outcome.report.stop, StopReason::AllFlowsDone, "clean run must finish");
    assert!(outcome.sim.san_violations().is_empty(), "clean run must be violation-free");
    let mut sim = outcome.sim;
    corrupt(&mut sim);
    let report = sim.run(RunLimits::default());
    (report.stop, sim.san_violations().to_vec())
}

fn assert_caught(stop: StopReason, violations: &[SanViolation], check: SanCheck) {
    assert_eq!(stop, StopReason::SanViolation, "corruption must abort the run: {violations:?}");
    assert!(
        violations.iter().any(|v| v.check == check),
        "expected a {} violation, got {violations:?}",
        check.as_str()
    );
}

#[test]
fn pool_leak_is_caught() {
    let (stop, v) = corrupted_run(false, |sim| sim.corrupt_pool_leak());
    assert_caught(stop, &v, SanCheck::PoolConservation);
}

#[test]
fn pool_double_free_is_caught() {
    let (stop, v) = corrupted_run(false, |sim| sim.corrupt_pool_double_free());
    assert_caught(stop, &v, SanCheck::PoolConservation);
}

#[test]
fn tie_break_reorder_is_caught() {
    let (stop, v) = corrupted_run(false, |sim| sim.corrupt_tie_break());
    assert_caught(stop, &v, SanCheck::TieBreak);
}

#[test]
fn queue_counter_skew_is_caught() {
    let (stop, v) = corrupted_run(false, |sim| sim.corrupt_queue_counter(HostId(0), 512));
    assert_caught(stop, &v, SanCheck::QueueAccounting);
}

#[test]
fn phantom_tx_done_is_caught() {
    let (stop, v) = corrupted_run(false, |sim| sim.corrupt_phantom_tx_done(HostId(0)));
    assert_caught(stop, &v, SanCheck::LinkOccupancy);
}

#[test]
fn unattributed_fault_drop_is_caught() {
    let (stop, v) = corrupted_run(true, |sim| sim.corrupt_fault_attribution());
    assert_caught(stop, &v, SanCheck::FaultAttribution);
}

/// Zero observer effect, across every transport family: a sanitized run
/// (per-epoch, the recommended/CI cadence) must produce a byte-identical
/// event stream and identical per-flow FCTs to the same run unsanitized —
/// and must still complete every scheme normally. Per-event invisibility
/// is covered (for PPT) by `all_cadences_are_invisible_for_ppt`; a debug
/// per-event audit over ten schemes is too slow for the tier-1 suite.
#[test]
fn sanitized_runs_are_byte_identical_across_schemes() {
    let schemes = [
        Scheme::Dctcp,
        Scheme::Tcp10,
        Scheme::Halfback,
        Scheme::ExpressPass,
        Scheme::Ppt,
        Scheme::Rc3,
        Scheme::Pias,
        Scheme::Homa,
        Scheme::Aeolus,
        Scheme::Ndp,
    ];
    for scheme in schemes {
        let name = scheme.name();
        let (plain_outcome, plain_trace) = run_experiment_traced(&small_exp(scheme.clone(), 11));
        let (san_outcome, san_trace) = run_experiment_traced_with(&small_exp(scheme, 11), |t| {
            t.sim.set_sanitizer(SanLevel::PerEpoch)
        });

        assert_eq!(
            san_outcome.report.stop,
            StopReason::AllFlowsDone,
            "{name}: sanitized run must complete normally"
        );
        assert!(
            san_outcome.sim.san_violations().is_empty(),
            "{name}: clean run must be violation-free: {:?}",
            san_outcome.sim.san_violations()
        );
        assert_eq!(
            plain_trace.to_jsonl(),
            san_trace.to_jsonl(),
            "{name}: sanitizer perturbed the event stream"
        );
        let fcts = |o: &ppt::harness::Outcome| -> Vec<(u64, u64)> {
            o.fct.records().iter().map(|r| (r.size_bytes, r.fct.as_nanos())).collect()
        };
        assert_eq!(fcts(&plain_outcome), fcts(&san_outcome), "{name}: sanitizer perturbed FCTs");
        assert_eq!(
            plain_outcome.report.events, san_outcome.report.events,
            "{name}: sanitizer changed the event count"
        );
    }
}

/// The epoch and at-end cadences must be equally invisible (they share
/// the observation path and differ only in audit frequency).
#[test]
fn all_cadences_are_invisible_for_ppt() {
    let (_, plain) = run_experiment_traced(&small_exp(Scheme::Ppt, 11));
    for level in [SanLevel::PerEvent, SanLevel::PerEpoch, SanLevel::AtEnd] {
        let (outcome, trace) =
            run_experiment_traced_with(&small_exp(Scheme::Ppt, 11), |t| t.sim.set_sanitizer(level));
        assert_eq!(outcome.report.stop, StopReason::AllFlowsDone);
        assert_eq!(
            plain.to_jsonl(),
            trace.to_jsonl(),
            "cadence {} perturbed the event stream",
            level.as_str()
        );
    }
}
