//! Directional paper claims, verified end to end at small scale. Absolute
//! numbers differ from the paper's testbed; the *orderings* are the
//! claims under test here.

use ppt::harness::{run_experiment, run_experiment_with, Experiment, Scheme, TopoKind};
use ppt::stats::{mean_utilization, utilization_series};
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn websearch(topo: TopoKind, load: f64, n: usize, seed: u64) -> Vec<ppt::workloads::FlowSpec> {
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), load, topo.edge_rate(), n, seed);
    all_to_all(topo.hosts(), &spec)
}

/// §1/§6: PPT reduces the overall average FCT vs DCTCP.
#[test]
fn ppt_beats_dctcp_overall() {
    let topo = TopoKind::Star { n: 8, rate_gbps: 10, delay_us: 20 };
    let flows = websearch(topo, 0.5, 150, 21);
    let dctcp = run_experiment(&Experiment::new(topo, Scheme::Dctcp, flows.clone()));
    let ppt = run_experiment(&Experiment::new(topo, Scheme::Ppt, flows));
    assert!(
        ppt.fct.overall_avg_us() < dctcp.fct.overall_avg_us(),
        "ppt={:.1}us dctcp={:.1}us",
        ppt.fct.overall_avg_us(),
        dctcp.fct.overall_avg_us()
    );
}

/// §6.1: PPT's small flows beat DCTCP's by a wide margin (priorities).
#[test]
fn ppt_small_flows_beat_dctcp_small_flows() {
    let topo = TopoKind::Star { n: 8, rate_gbps: 10, delay_us: 20 };
    let flows = websearch(topo, 0.6, 200, 33);
    let dctcp = run_experiment(&Experiment::new(topo, Scheme::Dctcp, flows.clone()));
    let ppt = run_experiment(&Experiment::new(topo, Scheme::Ppt, flows));
    assert!(
        ppt.fct.small_avg_us() < dctcp.fct.small_avg_us(),
        "ppt={:.1}us dctcp={:.1}us",
        ppt.fct.small_avg_us(),
        dctcp.fct.small_avg_us()
    );
}

/// §2.3/Fig 20: PPT's bottleneck utilization beats DCTCP's under load.
#[test]
fn ppt_utilization_exceeds_dctcp() {
    let topo = TopoKind::Star { n: 3, rate_gbps: 10, delay_us: 20 };
    // Two senders into one receiver, continuous backlogged-ish traffic.
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 60, 13);
    let flows = ppt::workloads::incast(2, &spec);

    let mut utils = Vec::new();
    for scheme in [Scheme::Dctcp, Scheme::Ppt] {
        let mut sampler_slot = None;
        let outcome = run_experiment_with(&Experiment::new(topo, scheme, flows.clone()), |t| {
            let link = t.sim.host_uplink(t.hosts[2]); // receiver downlink is the switch side...
                                                      // Sample the switch egress toward the receiver instead.
            let port = t
                .sim
                .switch_port_towards(t.leaves[0], ppt::netsim::NodeId::Host(t.hosts[2]))
                .unwrap();
            let l = t.sim.switch_port_link(t.leaves[0], port);
            let _ = link;
            sampler_slot = Some(t.sim.sample_link(
                l,
                ppt::netsim::SimDuration::from_micros(100),
                ppt::netsim::SimTime(20_000_000),
            ));
        });
        let series =
            utilization_series(outcome.sim.samples(sampler_slot.unwrap()), topo.edge_rate());
        utils.push(mean_utilization(&series));
    }
    assert!(utils[1] > utils[0], "PPT util {:.3} must exceed DCTCP util {:.3}", utils[1], utils[0]);
}

/// §6 headline: PPT must not starve large flows (its large-flow FCT stays
/// in DCTCP's ballpark or better).
#[test]
fn ppt_does_not_starve_large_flows() {
    let topo = TopoKind::Star { n: 8, rate_gbps: 10, delay_us: 20 };
    let flows = websearch(topo, 0.5, 150, 17);
    let dctcp = run_experiment(&Experiment::new(topo, Scheme::Dctcp, flows.clone()));
    let ppt = run_experiment(&Experiment::new(topo, Scheme::Ppt, flows));
    assert!(
        ppt.fct.large_avg_us() < dctcp.fct.large_avg_us() * 1.3,
        "ppt large={:.1}us dctcp large={:.1}us",
        ppt.fct.large_avg_us(),
        dctcp.fct.large_avg_us()
    );
}

/// Fig 3's left edge: under-filling (50% × MW) must not beat full filling.
#[test]
fn underfilling_loses_to_full_filling() {
    let topo = TopoKind::Star { n: 6, rate_gbps: 10, delay_us: 20 };
    let flows = websearch(topo, 0.5, 120, 77);
    let full = run_experiment(&Experiment::new(topo, Scheme::PptFill(1.0), flows.clone()));
    let under = run_experiment(&Experiment::new(topo, Scheme::PptFill(0.5), flows));
    assert!(
        full.fct.overall_avg_us() <= under.fct.overall_avg_us() * 1.05,
        "full={:.1}us under={:.1}us",
        full.fct.overall_avg_us(),
        under.fct.overall_avg_us()
    );
}

/// ROADMAP tiny-buffer question: with every buffer-denominated knob 10×
/// smaller (1 MB → 100 KB port buffers, K scaled alongside), does PPT's
/// LCP still find spare capacity? Claim under test: low-priority traffic
/// still completes (the ECN-guarded loop backs off instead of drowning),
/// and goodput degrades gracefully — the shallow fabric's FCTs stay within
/// a small factor of the deep-buffer baseline rather than collapsing.
#[test]
fn ppt_lcp_survives_the_tiny_buffer_regime() {
    use ppt::harness::run_experiment_traced;
    use ppt::stats::analyze_lcp;

    let topo = TopoKind::Star { n: 8, rate_gbps: 10, delay_us: 20 };
    let flows = websearch(topo, 0.5, 150, 55);

    let deep = run_experiment(&Experiment::new(topo, Scheme::Ppt, flows.clone()));
    assert_eq!(deep.completion_ratio, 1.0, "deep-buffer baseline must be clean");

    let mut tiny_exp = Experiment::new(topo, Scheme::Ppt, flows);
    tiny_exp.env = tiny_exp.env.clone().scale_buffers(0.1);
    assert_eq!(tiny_exp.env.port_buffer, 100_000);
    let (tiny, trace) = run_experiment_traced(&tiny_exp);

    // LCP still completes its low-priority traffic: every flow finishes,
    // and the low loop actually ran (opened and closed by flow completion,
    // not starved out by the shallow queues).
    assert_eq!(tiny.completion_ratio, 1.0, "flows lost in the tiny-buffer regime");
    let lcp = analyze_lcp(&trace.events, topo.base_rtt());
    assert!(!lcp.loops.is_empty(), "LCP never opened at 10x smaller buffers");
    assert!(
        lcp.closed_flow_done > 0,
        "no LCP loop survived to completion: {} expired, {} no-lp-acks",
        lcp.closed_expired,
        lcp.closed_no_lp_acks
    );

    // Graceful degradation: the shallow fabric costs something (more
    // marks/drops are expected) but overall FCT stays within 2x of the
    // deep-buffer run instead of collapsing.
    assert!(
        tiny.fct.overall_avg_us() < deep.fct.overall_avg_us() * 2.0,
        "tiny-buffer FCT collapsed: tiny={:.1}us deep={:.1}us",
        tiny.fct.overall_avg_us(),
        deep.fct.overall_avg_us()
    );
}

/// §6: RC3's aggressive low loops drop heavily under incast while PPT's
/// ECN-guarded loop does not.
#[test]
fn rc3_drops_more_low_priority_than_ppt_under_incast() {
    let topo = TopoKind::Star { n: 8, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.6, topo.edge_rate(), 80, 91);
    let flows = ppt::workloads::incast(7, &spec);
    let rc3 = run_experiment(&Experiment::new(topo, Scheme::Rc3, flows.clone()));
    let ppt = run_experiment(&Experiment::new(topo, Scheme::Ppt, flows));
    assert!(
        rc3.counters.dropped > ppt.counters.dropped,
        "rc3 drops={} ppt drops={}",
        rc3.counters.dropped,
        ppt.counters.dropped
    );
}
