//! Scheme conformance: one shared invariant battery that every registered
//! scheme must pass. New transports are covered by construction — add the
//! scheme to [`registered_schemes`] (the harness unit tests force the two
//! lists to agree) and the battery runs it through:
//!
//! 1. completion — every flow finishes and the run stops on its own;
//! 2. no starvation — every flow's FCT is positive and finite (no flow is
//!    parked until the wall clock rescues it);
//! 3. cumulative-ACK monotonicity — the run is sanitized, and simsan's
//!    ACK ledger checks every TCP-family `AckAdvance` note on observation
//!    (regressions are violations at any audit cadence), alongside the
//!    engine-side conservation ledger for the non-TCP schemes;
//! 4. digest stability — the per-flow FCT series is byte-identical across
//!    reruns, across `jobs = 1` vs `jobs = 4`, and across both event-queue
//!    implementations (calendar default vs the `BinaryHeap` oracle).

use ppt::harness::{run_experiment_with, Experiment, Scheme, TopoKind};
use ppt::netsim::{QueueKind, SanLevel, StopReason};
use ppt::sweep::run_points;
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

/// Every scheme the conformance battery gates: the paper's baselines plus
/// the ROADMAP additions, one entry per distinct transport. Ablation
/// variants (`ppt-no*`, fill/cap fractions) share their parent's code
/// paths; `Hypothetical` needs the two-pass oracle runner and has its own
/// determinism test.
fn registered_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Dctcp,
        Scheme::Tcp10,
        Scheme::Halfback,
        Scheme::ExpressPass,
        Scheme::Ppt,
        Scheme::Rc3,
        Scheme::Pias,
        Scheme::Homa,
        Scheme::Aeolus,
        Scheme::Ndp,
        Scheme::Hpcc,
        Scheme::Swift,
        Scheme::PowerTcp,
    ]
}

/// The shared workload: small enough that 13 schemes x several runs stay
/// test-tier, busy enough that scheduling, ECN/INT and retransmission
/// paths all fire.
fn experiment(scheme: Scheme) -> Experiment {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 40, 42);
    let flows = all_to_all(topo.hosts(), &spec);
    Experiment::new(topo, scheme, flows)
}

/// One battery run: per-flow `(size, fct_ns)` series under the given
/// queue, optionally sanitized at the per-event cadence.
fn battery_run(scheme: Scheme, queue: QueueKind, sanitize: bool) -> Vec<(u64, u64)> {
    let name = scheme.name();
    let outcome = run_experiment_with(&experiment(scheme), |t| {
        t.sim.set_queue_kind(queue);
        if sanitize {
            // Per-epoch cadence: the ACK-monotonicity ledger is checked on
            // every note regardless of cadence; the epoch audit sweeps the
            // queue-accounting ledger often enough without per-event cost.
            t.sim.set_sanitizer(SanLevel::PerEpoch);
        }
    });

    // 1. completion: the run ends because the work is done, and every
    //    flow made it.
    assert_eq!(outcome.report.stop, StopReason::AllFlowsDone, "{name}: abnormal stop");
    assert_eq!(
        outcome.report.flows_completed, outcome.report.flows_total,
        "{name}: not all flows completed"
    );
    assert_eq!(outcome.completion_ratio, 1.0, "{name}: completion ratio");

    // 2. no starvation: every flow has a positive, finite FCT — nothing
    //    sat parked until a limit expired.
    let records = outcome.fct.records();
    assert_eq!(records.len(), outcome.report.flows_total, "{name}: missing FCT records");
    for r in records {
        let fct = r.fct.as_nanos();
        assert!(fct > 0, "{name}: zero FCT for a {}B flow", r.size_bytes);
        assert!(
            fct < outcome.report.end_time.0,
            "{name}: flow starved ({}B took {fct} ns)",
            r.size_bytes
        );
    }

    // 3. cumulative-ACK monotonicity (and the rest of the simsan ledger):
    //    the per-event audit saw every AckAdvance note.
    assert!(
        outcome.sim.san_violations().is_empty(),
        "{name}: sanitizer violations {:?}",
        outcome.sim.san_violations()
    );

    records.iter().map(|r| (r.size_bytes, r.fct.as_nanos())).collect()
}

/// The full battery, scheme by scheme. Digest stability leg: the sanitized
/// calendar run, the plain calendar rerun, and the heap-oracle run must
/// produce byte-identical per-flow FCT series (this also re-proves that
/// the sanitizer and the queue implementation are both invisible).
#[test]
fn every_registered_scheme_passes_the_battery() {
    for scheme in registered_schemes() {
        let name = scheme.name();
        let sanitized = battery_run(scheme.clone(), QueueKind::Calendar, true);
        let plain = battery_run(scheme.clone(), QueueKind::Calendar, false);
        assert_eq!(sanitized, plain, "{name}: FCTs changed across reruns / under simsan");
        let heap = battery_run(scheme, QueueKind::Heap, false);
        assert_eq!(plain, heap, "{name}: FCTs differ between calendar and heap queues");
    }
}

/// Worker-count leg: running the whole registry through the shared sweep
/// runner on one worker and on four must give identical FCT series per
/// scheme. Workers only partition the scheme list — per-run state lives in
/// each `Simulator` — so any divergence here is shared mutable state.
#[test]
fn battery_results_are_identical_for_jobs_1_and_4() {
    let schemes = registered_schemes();
    let digests = |jobs: usize| {
        run_points(schemes.len(), jobs, |i| {
            battery_run(schemes[i].clone(), QueueKind::Calendar, false)
        })
    };
    let serial = digests(1);
    let parallel = digests(4);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "{}: diverged between jobs=1 and jobs=4", schemes[i].name());
    }
}

/// The registry above and the harness's own scheme list cannot drift: any
/// single-pass scheme the harness knows must be here (ablation variants
/// map to their parent transport), so adding a transport without
/// conformance coverage fails this test, not code review.
#[test]
fn registry_covers_every_harness_scheme_family() {
    let covered = registered_schemes();
    let families: Vec<Scheme> = vec![
        Scheme::Dctcp,
        Scheme::Tcp10,
        Scheme::Halfback,
        Scheme::ExpressPass,
        Scheme::Ppt,
        Scheme::PptNoLcpEcn,
        Scheme::PptNoEwd,
        Scheme::PptNoScheduling,
        Scheme::PptNoIdentification,
        Scheme::PptFill(0.75),
        Scheme::Rc3,
        Scheme::Rc3BufferCap(0.5),
        Scheme::Pias,
        Scheme::Homa,
        Scheme::Aeolus,
        Scheme::Ndp,
        Scheme::Hpcc,
        Scheme::PowerTcp,
        Scheme::HpccPpt,
        Scheme::Swift,
        Scheme::SwiftPpt,
        Scheme::Hypothetical(1.0),
    ];
    let family_of = |s: &Scheme| -> Scheme {
        match s {
            Scheme::PptNoLcpEcn
            | Scheme::PptNoEwd
            | Scheme::PptNoScheduling
            | Scheme::PptNoIdentification
            | Scheme::PptFill(_) => Scheme::Ppt,
            Scheme::Rc3BufferCap(_) => Scheme::Rc3,
            // Layered variants ride on their base transport's battery
            // coverage plus their own dedicated tests.
            Scheme::HpccPpt => Scheme::Hpcc,
            Scheme::SwiftPpt => Scheme::Swift,
            Scheme::Hypothetical(_) => Scheme::Dctcp,
            other => other.clone(),
        }
    };
    for scheme in &families {
        let fam = family_of(scheme);
        assert!(
            covered.contains(&fam),
            "{} (family {}) is not covered by the conformance registry",
            scheme.name(),
            fam.name()
        );
    }
}
