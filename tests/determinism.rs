//! Reproducibility: identical seeds must give bit-identical results, and
//! different seeds must actually differ. Every number in EXPERIMENTS.md
//! rests on this property.

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn fcts(scheme: Scheme, seed: u64) -> Vec<(u64, u64)> {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 50, seed);
    let flows = all_to_all(topo.hosts(), &spec);
    let outcome = run_experiment(&Experiment::new(topo, scheme, flows));
    outcome.fct.records().iter().map(|r| (r.size_bytes, r.fct.as_nanos())).collect()
}

#[test]
fn same_seed_same_fcts_for_ppt() {
    assert_eq!(fcts(Scheme::Ppt, 42), fcts(Scheme::Ppt, 42));
}

#[test]
fn same_seed_same_fcts_for_every_family() {
    for scheme in [Scheme::Dctcp, Scheme::Rc3, Scheme::Homa, Scheme::Ndp, Scheme::Hpcc] {
        let name = scheme.name();
        assert_eq!(fcts(scheme.clone(), 7), fcts(scheme, 7), "{name} is nondeterministic");
    }
}

#[test]
fn different_seed_different_workload() {
    assert_ne!(fcts(Scheme::Ppt, 1), fcts(Scheme::Ppt, 2));
}

#[test]
fn two_pass_hypothetical_is_deterministic() {
    assert_eq!(fcts(Scheme::Hypothetical(1.0), 5), fcts(Scheme::Hypothetical(1.0), 5));
}

/// One load point of the sweep: every per-flow FCT plus the raw queue-depth
/// time series at the bottleneck port, in a byte-comparable form.
type SweepPoint = (Vec<(u64, u64)>, Vec<(u64, u64, [u64; 8])>);

fn websearch_sweep(scheme: Scheme, seed: u64) -> Vec<SweepPoint> {
    use ppt::harness::run_experiment_with;
    use ppt::netsim::{NodeId, SimDuration, SimTime};

    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let mut sweep = Vec::new();
    for load in [0.3, 0.5, 0.7] {
        let spec =
            WorkloadSpec::new(SizeDistribution::web_search(), load, topo.edge_rate(), 60, seed);
        let flows = all_to_all(topo.hosts(), &spec);
        let mut sampler = None;
        let outcome = run_experiment_with(&Experiment::new(topo, scheme.clone(), flows), |t| {
            let port = t.sim.switch_port_towards(t.leaves[0], NodeId::Host(t.hosts[0])).unwrap();
            sampler = Some(t.sim.sample_port(
                t.leaves[0],
                port,
                SimDuration::from_micros(50),
                SimTime(40_000_000),
            ));
        });
        let fct_series: Vec<(u64, u64)> =
            outcome.fct.records().iter().map(|r| (r.size_bytes, r.fct.as_nanos())).collect();
        let queue_series: Vec<(u64, u64, [u64; 8])> = outcome
            .sim
            .samples(sampler.unwrap())
            .iter()
            .map(|s| (s.at.0, s.value, s.per_priority))
            .collect();
        sweep.push((fct_series, queue_series));
    }
    sweep
}

/// Satellite regression: a full websearch load sweep, run twice in the same
/// process, must reproduce byte-identical per-flow FCT series AND byte-
/// identical switch queue-depth sample series at every load point. This
/// catches any nondeterminism that survives the static pass (e.g. address-
/// dependent ordering smuggled in through a dependency).
#[test]
fn load_sweep_repeats_bit_identically_in_process() {
    for scheme in [Scheme::Ppt, Scheme::Dctcp] {
        let name = scheme.name();
        let first = websearch_sweep(scheme.clone(), 11);
        let second = websearch_sweep(scheme, 11);
        assert_eq!(first.len(), second.len());
        for (i, (a, b)) in first.iter().zip(&second).enumerate() {
            assert_eq!(a.0, b.0, "{name}: FCT series diverged at load point {i}");
            assert_eq!(a.1, b.1, "{name}: queue-depth series diverged at load point {i}");
            assert!(!a.1.is_empty(), "{name}: queue sampler produced no samples");
        }
    }
}
