//! Reproducibility: identical seeds must give bit-identical results, and
//! different seeds must actually differ. Every number in EXPERIMENTS.md
//! rests on this property.

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn fcts(scheme: Scheme, seed: u64) -> Vec<(u64, u64)> {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(
        SizeDistribution::web_search(),
        0.5,
        topo.edge_rate(),
        50,
        seed,
    );
    let flows = all_to_all(topo.hosts(), &spec);
    let outcome = run_experiment(&Experiment::new(topo, scheme, flows));
    outcome
        .fct
        .records()
        .iter()
        .map(|r| (r.size_bytes, r.fct.as_nanos()))
        .collect()
}

#[test]
fn same_seed_same_fcts_for_ppt() {
    assert_eq!(fcts(Scheme::Ppt, 42), fcts(Scheme::Ppt, 42));
}

#[test]
fn same_seed_same_fcts_for_every_family() {
    for scheme in [Scheme::Dctcp, Scheme::Rc3, Scheme::Homa, Scheme::Ndp, Scheme::Hpcc] {
        let name = scheme.name();
        assert_eq!(
            fcts(scheme.clone(), 7),
            fcts(scheme, 7),
            "{name} is nondeterministic"
        );
    }
}

#[test]
fn different_seed_different_workload() {
    assert_ne!(fcts(Scheme::Ppt, 1), fcts(Scheme::Ppt, 2));
}

#[test]
fn two_pass_hypothetical_is_deterministic() {
    assert_eq!(
        fcts(Scheme::Hypothetical(1.0), 5),
        fcts(Scheme::Hypothetical(1.0), 5)
    );
}
