//! Reproducibility: identical seeds must give bit-identical results, and
//! different seeds must actually differ. Every number in EXPERIMENTS.md
//! rests on this property.

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn fcts(scheme: Scheme, seed: u64) -> Vec<(u64, u64)> {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 50, seed);
    let flows = all_to_all(topo.hosts(), &spec);
    let outcome = run_experiment(&Experiment::new(topo, scheme, flows));
    outcome.fct.records().iter().map(|r| (r.size_bytes, r.fct.as_nanos())).collect()
}

#[test]
fn same_seed_same_fcts_for_ppt() {
    assert_eq!(fcts(Scheme::Ppt, 42), fcts(Scheme::Ppt, 42));
}

#[test]
fn same_seed_same_fcts_for_every_family() {
    for scheme in [Scheme::Dctcp, Scheme::Rc3, Scheme::Homa, Scheme::Ndp, Scheme::Hpcc] {
        let name = scheme.name();
        assert_eq!(fcts(scheme.clone(), 7), fcts(scheme, 7), "{name} is nondeterministic");
    }
}

#[test]
fn different_seed_different_workload() {
    assert_ne!(fcts(Scheme::Ppt, 1), fcts(Scheme::Ppt, 2));
}

#[test]
fn two_pass_hypothetical_is_deterministic() {
    assert_eq!(fcts(Scheme::Hypothetical(1.0), 5), fcts(Scheme::Hypothetical(1.0), 5));
}

/// FNV-1a 64-bit: a tiny, dependency-free, stable digest for golden files.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The four pinned `(scheme, seed, trace digest, FCT digest)` goldens.
/// The default engine queue (the calendar queue) must reproduce these,
/// and so must the `BinaryHeap` oracle — see
/// `pinned_seed_goldens_hold_on_the_heap_oracle_queue`.
const PINNED_GOLDENS: [(Scheme, u64, u64, u64); 4] = [
    (Scheme::Ppt, 42u64, 0x393f_3bd8_9c20_8596_u64, 0x544f_c7e6_370c_f276_u64),
    (Scheme::Dctcp, 42, 0x0d9e_974c_1169_b1bb, 0xdfbd_16a2_71d0_99be),
    (Scheme::Ndp, 7, 0xa624_4279_1c93_0e9f, 0x64cd_8caa_b1be_ec7b),
    (Scheme::Homa, 7, 0xd072_7754_f98c_10f5, 0xe4ec_42a4_cd20_bf42),
];

/// (trace JSONL hash, FCT digest) of one traced experiment under the
/// given event-queue implementation.
fn experiment_digests_on(exp: &Experiment, queue: ppt::netsim::QueueKind) -> (u64, u64) {
    use ppt::harness::run_experiment_traced_with;
    let (outcome, trace) = run_experiment_traced_with(exp, |t| t.sim.set_queue_kind(queue));
    let trace_hash = fnv1a64(trace.to_jsonl().as_bytes());
    let mut fct_buf = String::new();
    for r in outcome.fct.records() {
        fct_buf.push_str(&format!("{},{}\n", r.size_bytes, r.fct.as_nanos()));
    }
    (trace_hash, fnv1a64(fct_buf.as_bytes()))
}

/// The shared pinned-golden experiment: 5-host star, websearch at 0.5
/// load, 60 flows.
fn golden_experiment(scheme: Scheme, seed: u64) -> Experiment {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 60, seed);
    let flows = all_to_all(topo.hosts(), &spec);
    Experiment::new(topo, scheme, flows)
}

/// (trace JSONL hash, FCT digest) for one pinned-seed traced run, under
/// the given event-queue implementation.
fn golden_digests_on(scheme: Scheme, seed: u64, queue: ppt::netsim::QueueKind) -> (u64, u64) {
    experiment_digests_on(&golden_experiment(scheme, seed), queue)
}

/// (trace JSONL hash, FCT digest) under the engine's default queue.
fn golden_digests(scheme: Scheme, seed: u64) -> (u64, u64) {
    golden_digests_on(scheme, seed, ppt::netsim::QueueKind::Calendar)
}

/// Golden equivalence: the engine must reproduce the pre-refactor event
/// stream and FCTs byte-identically. These digests were pinned against the
/// heap-of-owned-packets engine (before the PacketPool/CSR refactor); any
/// change to event ordering, packet mutation, or trace emission shows up
/// here as a digest mismatch.
#[test]
fn pinned_seed_goldens_are_byte_identical() {
    // The PPT trace digest was re-pinned when `LcpCloseReason::NoLpAcks`
    // landed: loops that expire without ever seeing an LP ACK now
    // serialize as "no_lp_acks" instead of "expired". Event ordering and
    // FCTs did not move (the FCT digest is unchanged).
    for (scheme, seed, want_trace, want_fct) in PINNED_GOLDENS {
        let name = scheme.name();
        let (trace_hash, fct_hash) = golden_digests(scheme, seed);
        assert_eq!(
            (trace_hash, fct_hash),
            (want_trace, want_fct),
            "{name} seed {seed}: digests drifted (got trace={trace_hash:#018x} fct={fct_hash:#018x})"
        );
    }
}

/// Differential golden: the `BinaryHeap` oracle queue must reproduce the
/// exact same pinned digests as the calendar queue. Together with
/// `pinned_seed_goldens_are_byte_identical` this proves the two event-queue
/// implementations are byte-indistinguishable on real workloads, not just
/// on the randomized unit sequences in `netsim::sched`.
#[test]
fn pinned_seed_goldens_hold_on_the_heap_oracle_queue() {
    for (scheme, seed, want_trace, want_fct) in PINNED_GOLDENS {
        let name = scheme.name();
        let (trace_hash, fct_hash) = golden_digests_on(scheme, seed, ppt::netsim::QueueKind::Heap);
        assert_eq!(
            (trace_hash, fct_hash),
            (want_trace, want_fct),
            "{name} seed {seed}: heap-oracle digests diverged from pinned goldens \
             (got trace={trace_hash:#018x} fct={fct_hash:#018x})"
        );
    }
}

/// Pinned goldens for the two PR-10 additions, each asserted under both
/// event-queue implementations (the heap oracle must reproduce the
/// calendar queue bit for bit here too).
///
/// `POWERTCP_GOLDEN`: the standard golden workload on `Scheme::PowerTcp` —
/// pins the INT echo path, the power computation, and the window law.
/// `PFC_GOLDEN`: the same workload on `Scheme::Ppt` with `env.pfc` set —
/// pins the pause/resume machinery (threshold crossings, pause-frame
/// propagation, fixed-port-order resume) end to end.
const POWERTCP_GOLDEN: (u64, u64) = (0xc75b_c408_55e6_d0c9, 0x70df_3d3a_e6c6_bb2c);
const PFC_GOLDEN: (u64, u64) = (0x2ffc_8001_bf01_33c1, 0x0f03_df53_6c37_1a32);

/// Golden digests for the PFC switch mode: the pinned workload with PFC
/// backpressure layered over PPT's switch config.
fn pfc_golden_digests_on(seed: u64, queue: ppt::netsim::QueueKind) -> (u64, u64) {
    let mut exp = golden_experiment(Scheme::Ppt, seed);
    exp.env.pfc = true;
    experiment_digests_on(&exp, queue)
}

#[test]
fn powertcp_and_pfc_mode_goldens_hold_on_both_queues() {
    use ppt::netsim::QueueKind;
    for queue in [QueueKind::Calendar, QueueKind::Heap] {
        let ptcp = golden_digests_on(Scheme::PowerTcp, 42, queue);
        assert_eq!(
            ptcp, POWERTCP_GOLDEN,
            "PowerTCP digests drifted on {queue:?} \
             (got trace={:#018x} fct={:#018x})",
            ptcp.0, ptcp.1
        );
        let pfc = pfc_golden_digests_on(42, queue);
        assert_eq!(
            pfc, PFC_GOLDEN,
            "PFC-mode digests drifted on {queue:?} \
             (got trace={:#018x} fct={:#018x})",
            pfc.0, pfc.1
        );
    }
}

/// The new goldens also hold across the parallel sweep layer: jobs 1 and
/// jobs 4 reproduce the same digests (PFC pause state and INT telemetry
/// live entirely inside each `Simulator`).
#[test]
fn powertcp_and_pfc_mode_goldens_for_any_job_count() {
    use ppt::netsim::QueueKind;
    use ppt::sweep::run_points;
    let digests = |jobs: usize| {
        run_points(2, jobs, |i| match i {
            0 => golden_digests_on(Scheme::PowerTcp, 42, QueueKind::Calendar),
            _ => pfc_golden_digests_on(42, QueueKind::Calendar),
        })
    };
    let serial = digests(1);
    assert_eq!(serial, digests(4), "PR-10 goldens diverged between jobs=1 and jobs=4");
    assert_eq!(serial, vec![POWERTCP_GOLDEN, PFC_GOLDEN]);
}

/// (trace hash, FCT digest) for the pinned fault-injection golden: 1%
/// data loss plus a host-0 uplink outage from 100 µs to 600 µs.
fn fault_golden_digests_on(seed: u64, queue: ppt::netsim::QueueKind) -> (u64, u64) {
    use ppt::harness::{run_experiment_traced_with, FaultCmd, FaultSpec};
    use ppt::netsim::SimTime;
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 60, seed);
    let flows = all_to_all(topo.hosts(), &spec);
    let faults = FaultSpec::new(21).with_data_loss(0.01).cmd(FaultCmd::HostUplinkDown {
        host: 0,
        from: SimTime(100_000),
        until: SimTime(600_000),
    });
    let (outcome, trace) = run_experiment_traced_with(
        &Experiment::new(topo, Scheme::Ppt, flows).with_faults(faults),
        |t| t.sim.set_queue_kind(queue),
    );
    let trace_hash = fnv1a64(trace.to_jsonl().as_bytes());
    let mut fct_buf = String::new();
    for r in outcome.fct.records() {
        fct_buf.push_str(&format!("{},{}\n", r.size_bytes, r.fct.as_nanos()));
    }
    (trace_hash, fnv1a64(fct_buf.as_bytes()))
}

fn fault_golden_digests(seed: u64) -> (u64, u64) {
    fault_golden_digests_on(seed, ppt::netsim::QueueKind::Calendar)
}

/// The pinned fault golden (seed 42) must also hold on the heap oracle:
/// fault command scheduling, loss draws and retransmission timers all flow
/// through the same event queue, so this exercises the queue-equivalence
/// claim under pathological (bursty, far-future timer) schedules too.
#[test]
fn pinned_fault_golden_holds_on_the_heap_oracle_queue() {
    assert_eq!(
        fault_golden_digests_on(42, ppt::netsim::QueueKind::Heap),
        (0x79e9_57e3_0224_766e_u64, 0xe5d2_a262_ff6d_197e_u64),
        "heap-oracle fault digests diverged from pinned golden (seed 42)"
    );
}

/// Fault injection must not cost any determinism: the pinned fault
/// schedule produces byte-identical trace and FCT digests whether the
/// points run serially or on four workers, and the digests themselves are
/// golden — the fault RNG, timed down/up ops, and loss draws all live in
/// per-`Simulator` state, so worker count cannot reorder them.
#[test]
fn pinned_fault_schedule_goldens_for_any_job_count() {
    use ppt::sweep::run_points;
    const SEEDS: [u64; 3] = [42, 7, 11];
    let digests = |jobs: usize| run_points(SEEDS.len(), jobs, |i| fault_golden_digests(SEEDS[i]));
    let serial = digests(1);
    let parallel = digests(4);
    assert_eq!(serial, parallel, "fault run diverged between jobs=1 and jobs=4");
    assert_eq!(
        serial[0],
        (0x79e9_57e3_0224_766e_u64, 0xe5d2_a262_ff6d_197e_u64),
        "pinned fault golden drifted (seed 42)"
    );
}

/// One load point of the sweep: every per-flow FCT plus the raw queue-depth
/// time series at the bottleneck port, in a byte-comparable form.
type SweepPoint = (Vec<(u64, u64)>, Vec<(u64, u64, [u64; 8])>);

fn websearch_sweep(scheme: Scheme, seed: u64) -> Vec<SweepPoint> {
    use ppt::harness::run_experiment_with;
    use ppt::netsim::{NodeId, SimDuration, SimTime};

    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let mut sweep = Vec::new();
    for load in [0.3, 0.5, 0.7] {
        let spec =
            WorkloadSpec::new(SizeDistribution::web_search(), load, topo.edge_rate(), 60, seed);
        let flows = all_to_all(topo.hosts(), &spec);
        let mut sampler = None;
        let outcome = run_experiment_with(&Experiment::new(topo, scheme.clone(), flows), |t| {
            let port = t.sim.switch_port_towards(t.leaves[0], NodeId::Host(t.hosts[0])).unwrap();
            sampler = Some(t.sim.sample_port(
                t.leaves[0],
                port,
                SimDuration::from_micros(50),
                SimTime(40_000_000),
            ));
        });
        let fct_series: Vec<(u64, u64)> =
            outcome.fct.records().iter().map(|r| (r.size_bytes, r.fct.as_nanos())).collect();
        let queue_series: Vec<(u64, u64, [u64; 8])> = outcome
            .sim
            .samples(sampler.unwrap())
            .iter()
            .map(|s| (s.at.0, s.value, s.per_priority))
            .collect();
        sweep.push((fct_series, queue_series));
    }
    sweep
}

/// Byte-comparable projection of one sweep point's result.
fn sweep_fingerprint(r: &ppt::sweep::PointResult) -> (String, Vec<(u64, u64)>, u64, u64, u64, u64) {
    (
        r.label.clone(),
        r.fct.records().iter().map(|rec| (rec.size_bytes, rec.fct.as_nanos())).collect(),
        r.completion_ratio.to_bits(),
        r.counters.dropped,
        r.counters.marked,
        r.report.events,
    )
}

/// The parallel sweep layer must be invisible in the results: the same
/// grid run serially (`jobs = 1`) and on four workers (`jobs = 4`) must
/// produce identical per-flow FCT series, counters and event counts at
/// every point, in the same (index-keyed) order. This is the contract
/// that lets figure binaries take `PPT_JOBS` without a determinism
/// caveat.
#[test]
fn sweep_results_identical_for_any_job_count() {
    use ppt::sweep::SweepSpec;

    let run = |jobs: usize| -> Vec<_> {
        let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
        SweepSpec::new()
            .jobs(jobs)
            .grid(
                topo,
                &[Scheme::Ppt, Scheme::Dctcp, Scheme::Hypothetical(1.0)],
                &SizeDistribution::web_search(),
                &[0.3, 0.6],
                40,
                &[11, 13],
            )
            .run()
            .iter()
            .map(sweep_fingerprint)
            .collect()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.len(), 12, "3 schemes x 2 loads x 2 seeds");
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "point {i} diverged between jobs=1 and jobs=4");
        assert!(!s.1.is_empty(), "point {i} recorded no FCTs");
    }
}

/// Satellite regression: a full websearch load sweep, run twice in the same
/// process, must reproduce byte-identical per-flow FCT series AND byte-
/// identical switch queue-depth sample series at every load point. This
/// catches any nondeterminism that survives the static pass (e.g. address-
/// dependent ordering smuggled in through a dependency).
#[test]
fn load_sweep_repeats_bit_identically_in_process() {
    for scheme in [Scheme::Ppt, Scheme::Dctcp] {
        let name = scheme.name();
        let first = websearch_sweep(scheme.clone(), 11);
        let second = websearch_sweep(scheme, 11);
        assert_eq!(first.len(), second.len());
        for (i, (a, b)) in first.iter().zip(&second).enumerate() {
            assert_eq!(a.0, b.0, "{name}: FCT series diverged at load point {i}");
            assert_eq!(a.1, b.1, "{name}: queue-depth series diverged at load point {i}");
            assert!(!a.1.is_empty(), "{name}: queue sampler produced no samples");
        }
    }
}
