//! Telemetry determinism contract (DESIGN.md §14): the sampler reads
//! state and never mutates it, so telemetered runs must reproduce the
//! pinned goldens byte-for-byte, and the sampled series / histograms /
//! report JSON must themselves be byte-identical across reruns and
//! worker counts.

use ppt::harness::{
    run_experiment, run_experiment_traced, Experiment, Scheme, TelemetrySpec, TelemetrySummary,
    TopoKind,
};
use ppt::netsim::{SimDuration, SimTime, TelemetryConfig};
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

/// FNV-1a 64-bit, matching `tests/determinism.rs`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The same pinned-seed traced scenario as
/// `determinism::pinned_seed_goldens_are_byte_identical`, but with the
/// telemetry sampler armed at 10 µs.
fn telemetered_golden_digests(scheme: Scheme, seed: u64) -> (u64, u64) {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 60, seed);
    let flows = all_to_all(topo.hosts(), &spec);
    let exp = Experiment::new(topo, scheme, flows)
        .with_telemetry(TelemetrySpec::new(SimDuration::from_micros(10)));
    let (outcome, trace) = run_experiment_traced(&exp);
    assert!(
        outcome.sim.telemetry().map(|t| t.samples_taken() > 0).unwrap_or(false),
        "telemetry must actually sample during the golden run"
    );
    let trace_hash = fnv1a64(trace.to_jsonl().as_bytes());
    let mut fct_buf = String::new();
    for r in outcome.fct.records() {
        fct_buf.push_str(&format!("{},{}\n", r.size_bytes, r.fct.as_nanos()));
    }
    (trace_hash, fnv1a64(fct_buf.as_bytes()))
}

/// The heart of the contract: arming the sampler must not move a single
/// byte of the pinned trace or FCT goldens. These are the exact digests
/// pinned in `tests/determinism.rs` for untelemetered runs — sampling
/// reads state, never mutates, and `Ev::Sample` dispatches emit nothing
/// into the packet path.
#[test]
fn telemetry_leaves_pinned_goldens_unchanged() {
    for (scheme, seed, want_trace, want_fct) in [
        (Scheme::Ppt, 42u64, 0x393f_3bd8_9c20_8596_u64, 0x544f_c7e6_370c_f276_u64),
        (Scheme::Dctcp, 42, 0x0d9e_974c_1169_b1bb, 0xdfbd_16a2_71d0_99be),
        (Scheme::Ndp, 7, 0xa624_4279_1c93_0e9f, 0x64cd_8caa_b1be_ec7b),
        (Scheme::Homa, 7, 0xd072_7754_f98c_10f5, 0xe4ec_42a4_cd20_bf42),
    ] {
        let name = scheme.name();
        let (trace_hash, fct_hash) = telemetered_golden_digests(scheme, seed);
        assert_eq!(
            (trace_hash, fct_hash),
            (want_trace, want_fct),
            "{name} seed {seed}: telemetry perturbed the goldens \
             (got trace={trace_hash:#018x} fct={fct_hash:#018x})"
        );
    }
}

/// A telemetered run's summary JSON (series analyses + histogram dumps),
/// which is what `pptlab report` prints per scheme.
fn summary_json(scheme: Scheme, seed: u64) -> String {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 60, seed);
    let flows = all_to_all(topo.hosts(), &spec);
    let exp = Experiment::new(topo, scheme, flows)
        .with_telemetry(TelemetrySpec::new(SimDuration::from_micros(10)));
    let outcome = run_experiment(&exp);
    outcome.telemetry.as_ref().expect("telemetry summary present").to_json(false)
}

/// The report JSON is itself deterministic: byte-identical when the same
/// point reruns, and byte-identical between `jobs = 1` and `jobs = 4` —
/// the property `pptlab report` relies on and `scripts/check.sh` smoke-
/// checks end to end.
#[test]
fn report_json_identical_across_reruns_and_job_counts() {
    use ppt::sweep::run_points;
    const POINTS: [(Scheme, u64); 3] = [(Scheme::Ppt, 42), (Scheme::Dctcp, 42), (Scheme::Ndp, 7)];
    let batch = |jobs: usize| {
        run_points(POINTS.len(), jobs, |i| summary_json(POINTS[i].0.clone(), POINTS[i].1))
    };
    let serial = batch(1);
    let rerun = batch(1);
    let parallel = batch(4);
    assert_eq!(serial, rerun, "report JSON diverged between reruns");
    assert_eq!(serial, parallel, "report JSON diverged between jobs=1 and jobs=4");
    for (i, json) in serial.iter().enumerate() {
        assert!(json.contains("\"series\""), "point {i}: summary lost its series block");
        assert!(json.contains("\"fct_ns\""), "point {i}: summary lost its FCT histogram");
    }
}

/// Raw sampled series + histograms (the `<id>.telemetry.jsonl` stream)
/// for one telemetered run.
fn raw_dump(scheme: Scheme, seed: u64, prof: bool) -> String {
    use ppt::harness::run_experiment_with;
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 60, seed);
    let flows = all_to_all(topo.hosts(), &spec);
    let exp = Experiment::new(topo, scheme, flows);
    let outcome = run_experiment_with(&exp, |t| {
        let mut cfg = TelemetryConfig::new(SimDuration::from_micros(10));
        if prof {
            cfg = cfg.with_prof();
        }
        t.sim.enable_telemetry(cfg);
    });
    let mut out = String::new();
    // Never include profile rows: they are wall-clock and the one part of
    // telemetry that is *expected* to differ between runs (DESIGN.md §14.3).
    outcome.sim.telemetry().expect("telemetry enabled").dump_events(&mut out, false);
    out
}

/// The raw sample stream is byte-identical across reruns, and enabling
/// the wall-clock profiler changes none of it — profiling observes the
/// dispatch loop from outside the simulation and cannot leak into
/// sampled state.
#[test]
fn sampled_series_byte_identical_and_prof_invisible() {
    let plain_a = raw_dump(Scheme::Dctcp, 42, false);
    let plain_b = raw_dump(Scheme::Dctcp, 42, false);
    let profiled = raw_dump(Scheme::Dctcp, 42, true);
    assert!(!plain_a.is_empty(), "dump produced no sample rows");
    assert!(plain_a.contains("\"sample\""), "dump missing sample events");
    assert_eq!(plain_a, plain_b, "sample stream diverged between reruns");
    assert_eq!(plain_a, profiled, "profiler perturbed the sampled series");
}

/// With `PPT_DUMP_DIR` set, an abnormal stop routes the flight-recorder
/// ring to its own file instead of interleaving on stderr (satellite of
/// this PR). The env var is process-global, so this test owns a unique
/// directory and every other test in this binary completes normally.
#[test]
fn abnormal_stop_dump_routes_to_ppt_dump_dir() {
    let dir = std::env::temp_dir().join(format!("ppt-dump-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create dump dir");
    std::env::set_var("PPT_DUMP_DIR", &dir);

    let topo = TopoKind::Star { n: 3, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.3, topo.edge_rate(), 20, 42);
    let flows = all_to_all(topo.hosts(), &spec);
    let mut exp = Experiment::new(topo, Scheme::Ppt, flows);
    // Cut the run mid-flight: the first websearch arrival in this
    // scenario is at ~9.7 ms and the full run ends at ~54 ms, so 20 ms
    // guarantees recorded events AND unfinished flows.
    exp.max_time = SimTime(20_000_000);
    let outcome = run_experiment(&exp);
    std::env::remove_var("PPT_DUMP_DIR");
    assert!(outcome.report.is_abnormal(), "scenario must stop abnormally");

    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dump dir")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("ppt-dump-") && name.ends_with(".jsonl")
        })
        .collect();
    assert!(!dumps.is_empty(), "abnormal stop left no dump file in PPT_DUMP_DIR");
    let body = std::fs::read_to_string(dumps[0].path()).expect("read dump file");
    assert!(!body.is_empty(), "dump file is empty");
    assert!(body.lines().all(|l| l.starts_with('{')), "dump file is not JSONL");
    std::fs::remove_dir_all(&dir).ok();
}

/// `TelemetrySummary` round-trips through `from_telemetry` with the
/// interval and sample count intact, and analyzes every series.
#[test]
fn summary_reflects_sampler_state() {
    use ppt::harness::run_experiment_with;
    let topo = TopoKind::Star { n: 3, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.3, topo.edge_rate(), 20, 42);
    let flows = all_to_all(topo.hosts(), &spec);
    let exp = Experiment::new(topo, Scheme::Dctcp, flows);
    let outcome = run_experiment_with(&exp, |t| {
        t.sim.enable_telemetry(TelemetryConfig::new(SimDuration::from_micros(10)));
    });
    let t = outcome.sim.telemetry().expect("telemetry enabled");
    let summary = TelemetrySummary::from_telemetry(t);
    assert_eq!(summary.interval, SimDuration::from_micros(10));
    assert_eq!(summary.samples, t.samples_taken());
    assert!(summary.samples > 0);
    assert_eq!(summary.series.len(), t.series().len());
    assert_eq!(summary.fct_ns.count(), outcome.fct.records().len() as u64);
    assert!(summary.prof.is_none(), "prof must stay off unless requested");
}
