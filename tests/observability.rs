//! Observability layer: trace determinism, the paper's LCP invariants as
//! seen through the event stream, the zero-cost disabled path, and
//! abnormal-stop reporting.

use ppt::harness::{
    collect_metrics, run_experiment, run_experiment_traced, Experiment, Scheme, TopoKind,
};
use ppt::netsim::{SimTime, StopReason, TraceEvent};
use ppt::stats::analyze_lcp;
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn websearch_experiment(seed: u64, flows: usize, load: f64) -> Experiment {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let spec =
        WorkloadSpec::new(SizeDistribution::web_search(), load, topo.edge_rate(), flows, seed);
    Experiment::new(topo, Scheme::Ppt, all_to_all(topo.hosts(), &spec))
}

/// Same seed ⇒ byte-identical events.jsonl, twice in the same process.
#[test]
fn traced_websearch_run_is_byte_identical() {
    let (_, first) = run_experiment_traced(&websearch_experiment(42, 50, 0.5));
    let (_, second) = run_experiment_traced(&websearch_experiment(42, 50, 0.5));
    let a = first.to_jsonl();
    assert!(!a.is_empty(), "traced run produced no events");
    assert_eq!(a, second.to_jsonl(), "event stream is nondeterministic");
    assert!(a.contains(r#""ev":"lcp_opened""#), "PPT run never opened an LCP loop");
    assert!(a.contains(r#""ev":"flow_complete""#));
    // Every line is one JSON object with the shared prefix.
    for line in a.lines() {
        assert!(line.starts_with(r#"{"at":"#) && line.ends_with('}'), "bad line: {line}");
    }
}

/// Tracing must not perturb the simulation: the traced and untraced runs
/// of one experiment report identical results.
#[test]
fn tracing_does_not_change_the_run() {
    let plain = run_experiment(&websearch_experiment(7, 40, 0.5));
    let (traced, data) = run_experiment_traced(&websearch_experiment(7, 40, 0.5));
    assert!(!data.events.is_empty());
    assert_eq!(plain.report.events, traced.report.events);
    assert_eq!(plain.report.end_time, traced.report.end_time);
    assert_eq!(plain.report.flows_completed, traced.report.flows_completed);
    let fcts = |o: &ppt::harness::Outcome| -> Vec<(u64, u64)> {
        o.fct.records().iter().map(|r| (r.size_bytes, r.fct.as_nanos())).collect()
    };
    assert_eq!(fcts(&plain), fcts(&traced));
}

/// The disabled path really is disabled: a raw simulator without a sink
/// reports no tracing and yields no sink to take.
#[test]
fn no_sink_means_no_trace() {
    use ppt::netsim::{star, Rate, RunLimits, SimDuration, SwitchConfig};
    use ppt::transports::{install_dctcp, Proto, TcpCfg};
    let mut topo = star::<Proto>(
        3,
        Rate::gbps(10),
        SimDuration::from_micros(20),
        SwitchConfig::dctcp(200_000, 30_000),
    );
    let cfg = TcpCfg::new(topo.base_rtt);
    install_dctcp(&mut topo, &cfg);
    topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 500_000, SimTime::ZERO, 1);
    assert!(!topo.sim.trace_enabled());
    let report = topo.sim.run(RunLimits::default());
    assert_eq!(report.flows_completed, 1);
    assert!(topo.sim.take_trace_sink().is_none());
}

/// §4.2: the LCP never reacts to its own congestion signal — an
/// ECE-marked LCP ACK must not trigger a new packet.
#[test]
fn ece_marked_lcp_acks_are_ignored() {
    let (_, data) = run_experiment_traced(&websearch_experiment(42, 80, 0.8));
    let mut acks = 0usize;
    let mut ece = 0usize;
    for (_, ev) in &data.events {
        if let TraceEvent::LcpAck { ece: marked, sent_new, .. } = *ev {
            acks += 1;
            if marked {
                ece += 1;
                assert!(!sent_new, "an ECE-marked LCP ACK triggered a new packet");
            }
        }
    }
    assert!(acks > 0, "no LCP ACKs in a websearch PPT run");
    // The analyzer must agree with the raw scan.
    let rtt = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 }.base_rtt();
    let report = analyze_lcp(&data.events, rtt);
    assert_eq!(report.lcp_acks, acks);
    assert_eq!(report.ece_acks, ece);
    assert_eq!(report.ece_ignored, ece, "analyzer saw a reacted-to ECE ack");
}

/// Fig 16's mechanism: with EWD on, the LCP send volume roughly halves
/// each RTT.
#[test]
fn ewd_halves_the_per_rtt_lcp_send_volume() {
    let topo = TopoKind::Star { n: 3, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.3, topo.edge_rate(), 1, 9);
    let mut flows = all_to_all(topo.hosts(), &spec);
    // One large flow: big enough for a multi-RTT first-window LCP.
    flows.truncate(1);
    flows[0].size_bytes = 2_000_000;
    flows[0].first_write_bytes = flows[0].size_bytes;
    let (_, data) = run_experiment_traced(&Experiment::new(topo, Scheme::Ppt, flows));
    let report = analyze_lcp(&data.events, topo.base_rtt());
    assert!(report.opened_flow_start >= 1, "case-1 loop never opened");
    assert!(report.ewd_ratios >= 1, "no consecutive RTT windows with LCP traffic");
    assert!(
        report.ewd_halving_ratio > 0.25 && report.ewd_halving_ratio < 0.75,
        "per-RTT send ratio {} is not ≈ 0.5",
        report.ewd_halving_ratio
    );
}

/// Stop reasons: a run cut short by `max_time` reports `MaxTime` and is
/// abnormal; a completed run reports `AllFlowsDone` and is not.
#[test]
fn stop_reasons_classify_runs() {
    let normal = run_experiment(&websearch_experiment(3, 20, 0.3));
    assert_eq!(normal.report.stop, StopReason::AllFlowsDone);
    assert!(!normal.report.is_abnormal());

    let mut exp = websearch_experiment(3, 20, 0.3);
    exp.max_time = SimTime(1_000); // 1µs: nothing can finish
    let cut = run_experiment(&exp);
    assert_eq!(cut.report.stop, StopReason::MaxTime);
    assert!(cut.report.is_abnormal());
    assert!(cut.report.flows_completed < cut.report.flows_total);
}

/// The metrics registry distills a run deterministically.
#[test]
fn metrics_cover_engine_flows_and_switches() {
    let outcome = run_experiment(&websearch_experiment(42, 30, 0.4));
    let m = collect_metrics(&outcome);
    assert_eq!(m.counter("flows.total"), outcome.report.flows_total as u64);
    assert_eq!(m.counter("flows.completed"), outcome.report.flows_completed as u64);
    assert_eq!(m.counter("engine.events"), outcome.report.events);
    assert_eq!(m.counter("engine.stop.all_flows_done"), 1);
    assert!(m.counter("switch.total.enqueued") > 0);
    assert!(m.counter("links.tx_bytes") > 0);
    let json = m.to_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"counters\"") && json.contains("\"gauges\""));

    let again = collect_metrics(&run_experiment(&websearch_experiment(42, 30, 0.4)));
    assert_eq!(json, again.to_json(), "metrics are nondeterministic");
}
