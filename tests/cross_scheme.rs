//! Cross-crate integration: every scheme survives the same mixed workload
//! end to end — no stalls, no lost flows, sane counters.

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::{all_to_all, incast, SizeDistribution, WorkloadSpec};

fn small_workload(topo: TopoKind, n_flows: usize, seed: u64) -> Vec<ppt::workloads::FlowSpec> {
    let spec =
        WorkloadSpec::new(SizeDistribution::web_search(), 0.4, topo.edge_rate(), n_flows, seed);
    all_to_all(topo.hosts(), &spec)
}

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Dctcp,
        Scheme::Tcp10,
        Scheme::Halfback,
        Scheme::ExpressPass,
        Scheme::Ppt,
        Scheme::PptNoLcpEcn,
        Scheme::PptNoEwd,
        Scheme::PptNoScheduling,
        Scheme::PptNoIdentification,
        Scheme::PptFill(0.5),
        Scheme::Rc3,
        Scheme::Rc3BufferCap(0.4),
        Scheme::Pias,
        Scheme::Homa,
        Scheme::Aeolus,
        Scheme::Ndp,
        Scheme::Hpcc,
        Scheme::HpccPpt,
        Scheme::Swift,
        Scheme::SwiftPpt,
        Scheme::Hypothetical(1.0),
    ]
}

#[test]
fn every_scheme_completes_an_all_to_all_workload() {
    let topo = TopoKind::Star { n: 6, rate_gbps: 10, delay_us: 20 };
    let flows = small_workload(topo, 60, 3);
    for scheme in all_schemes() {
        let name = scheme.name();
        let outcome = run_experiment(&Experiment::new(topo, scheme, flows.clone()));
        assert!(
            outcome.completion_ratio > 0.999,
            "{name}: only {:.1}% of flows completed",
            outcome.completion_ratio * 100.0
        );
        assert!(outcome.fct.overall_avg_us() > 0.0, "{name}: empty FCTs");
    }
}

#[test]
fn every_scheme_survives_poisson_incast() {
    let topo = TopoKind::Star { n: 8, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 40, 11);
    let flows = incast(7, &spec);
    for scheme in all_schemes() {
        let name = scheme.name();
        let outcome = run_experiment(&Experiment::new(topo, scheme, flows.clone()));
        assert!(
            outcome.completion_ratio > 0.999,
            "{name}: incast stalled at {:.1}%",
            outcome.completion_ratio * 100.0
        );
    }
}

#[test]
fn schemes_work_on_the_leaf_spine_fabric() {
    // A trimmed-down leaf-spine sanity pass (the full 144-host fabric is
    // exercised by the bench binaries in release mode).
    let topo = TopoKind::Oversubscribed;
    let spec = WorkloadSpec::new(SizeDistribution::memcached_w1(), 0.3, topo.edge_rate(), 150, 17);
    let flows = all_to_all(topo.hosts(), &spec);
    for scheme in [Scheme::Dctcp, Scheme::Ppt, Scheme::Homa] {
        let name = scheme.name();
        let outcome = run_experiment(&Experiment::new(topo, scheme, flows.clone()));
        assert!(
            outcome.completion_ratio > 0.999,
            "{name} on leaf-spine: {:.1}%",
            outcome.completion_ratio * 100.0
        );
    }
}

#[test]
fn memcached_workload_runs_on_proactive_schemes() {
    let topo = TopoKind::Star { n: 6, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::memcached_w1(), 0.5, topo.edge_rate(), 200, 29);
    let flows = all_to_all(topo.hosts(), &spec);
    for scheme in [Scheme::Homa, Scheme::Aeolus, Scheme::Ndp, Scheme::Ppt] {
        let name = scheme.name();
        let outcome = run_experiment(&Experiment::new(topo, scheme, flows.clone()));
        assert!(outcome.completion_ratio > 0.999, "{name}: memcached stalled");
        // All flows are <=100KB: there must be no "large" bin.
        assert!(
            outcome.fct.large_avg_us().is_nan(),
            "{name}: large flows in a small-only workload"
        );
    }
}

#[test]
fn ppt_works_on_a_fat_tree() {
    // k=4 fat-tree, 16 hosts, PPT vs DCTCP across pods.
    let topo = TopoKind::FatTree { k: 4, edge_gbps: 10 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.4, topo.edge_rate(), 80, 61);
    let flows = all_to_all(topo.hosts(), &spec);
    for scheme in [Scheme::Ppt, Scheme::Dctcp] {
        let name = scheme.name();
        let outcome = run_experiment(&Experiment::new(topo, scheme, flows.clone()));
        assert!(
            outcome.completion_ratio > 0.999,
            "{name} on fat-tree: {:.1}%",
            outcome.completion_ratio * 100.0
        );
    }
}
