//! Fault injection end to end: every transport must survive random packet
//! loss, and PPT's low-channel loop must degrade exactly the way §3.2 of
//! the paper says it does when its ACK stream is destroyed.

use ppt::harness::{
    run_experiment, run_experiment_traced, run_experiment_traced_with, Experiment, FaultCmd,
    FaultSpec, Scheme, TopoKind,
};
use ppt::netsim::SimTime;
use ppt::stats::{analyze_lcp, analyze_recovery};
use ppt::trace::{LcpCloseReason, TraceEvent};
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn workload(topo: TopoKind, n_flows: usize, seed: u64) -> Vec<ppt::workloads::FlowSpec> {
    let spec =
        WorkloadSpec::new(SizeDistribution::web_search(), 0.4, topo.edge_rate(), n_flows, seed);
    all_to_all(topo.hosts(), &spec)
}

/// Every scheme's loss-recovery machinery (RTO, trimming + NACKs, credit
/// retransmission, ...) must actually work: with 1% of data packets
/// destroyed at serialization time, every flow still completes.
#[test]
fn every_scheme_completes_under_one_percent_data_loss() {
    let topo = TopoKind::Star { n: 6, rate_gbps: 10, delay_us: 20 };
    let flows = workload(topo, 60, 3);
    for scheme in [
        Scheme::Dctcp,
        Scheme::Ppt,
        Scheme::Pias,
        Scheme::Homa,
        Scheme::Hpcc,
        Scheme::HpccPpt,
        Scheme::Swift,
        Scheme::Ndp,
        Scheme::Rc3,
        Scheme::ExpressPass,
    ] {
        let name = scheme.name();
        let faults = FaultSpec::new(0xFA17).with_data_loss(0.01);
        let outcome =
            run_experiment(&Experiment::new(topo, scheme, flows.clone()).with_faults(faults));
        assert_eq!(
            outcome.report.flows_completed, outcome.report.flows_total,
            "{name}: lost flows under 1% data loss ({} injected drops)",
            outcome.report.faults.fault_drops
        );
        assert!(outcome.report.faults.fault_drops > 0, "{name}: loss knob had no effect");
        assert!(
            outcome.report.faults.retransmits > 0,
            "{name}: recovered every loss without a single noted retransmission?"
        );
    }
}

/// A host-uplink outage is harsher than random loss — everything the host
/// serializes during the window dies. The paper's own scheme and the two
/// strongest baselines must still finish every flow.
#[test]
fn ppt_and_baselines_ride_out_a_link_outage() {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let flows = workload(topo, 40, 11);
    for scheme in [Scheme::Ppt, Scheme::Dctcp, Scheme::Ndp] {
        let name = scheme.name();
        let faults = FaultSpec::new(5).cmd(FaultCmd::HostUplinkDown {
            host: 0,
            from: SimTime(2_000_000),
            until: SimTime(2_800_000),
        });
        let outcome =
            run_experiment(&Experiment::new(topo, scheme, flows.clone()).with_faults(faults));
        assert_eq!(
            outcome.report.flows_completed, outcome.report.flows_total,
            "{name}: flows stranded by an 800us uplink outage"
        );
        assert!(
            outcome.report.faults.max_stall.as_nanos() >= 800_000,
            "{name}: outage window not recorded"
        );
    }
}

/// §3.2 paper invariant: when every low-priority ACK is destroyed, the LCP
/// loop never hears back and must self-terminate after exactly
/// `LOOP_EXPIRY_RTTS` (= 2) RTTs of silence, with the dedicated
/// `no_lp_acks` close reason — and the flow still completes over HCP.
#[test]
fn lp_ack_blackhole_closes_lcp_as_no_lp_acks_after_two_rtts() {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let flows = workload(topo, 40, 7);
    let faults = FaultSpec::new(9).with_ack_loss(1.0).lp_acks_only();
    let (outcome, trace) =
        run_experiment_traced(&Experiment::new(topo, Scheme::Ppt, flows).with_faults(faults));

    // HCP never depends on LP ACKs: the flows all finish regardless.
    assert_eq!(
        outcome.report.flows_completed, outcome.report.flows_total,
        "flows must complete over HCP even with the LP ACK channel dead"
    );
    assert!(outcome.report.faults.fault_drops > 0, "no LP ACKs were actually dropped");

    let rtt = topo.base_rtt();
    let report = analyze_lcp(&trace.events, rtt);
    assert!(
        report.closed_no_lp_acks > 0,
        "expected silence-expired loops; got {} flow-done, {} expired, {} still open",
        report.closed_flow_done,
        report.closed_expired,
        report.still_open
    );
    assert_eq!(
        report.closed_expired, 0,
        "with ALL LP ACKs dropped, every expiry must be the no-LP-ACK case"
    );
    // Each such loop lived ~2 RTTs: expiry is checked on an RTT-period
    // timer, so the close lands in [2 RTT, 3 RTT) after the open.
    let rtt_ns = rtt.as_nanos();
    for l in report.loops.iter().filter(|l| l.close_reason == Some(LcpCloseReason::NoLpAcks)) {
        let dur = l.duration_ns();
        assert!(
            dur >= 2 * rtt_ns && dur < 4 * rtt_ns,
            "flow {}: no-LP-ACK loop lived {dur} ns, want ~2 RTTs ({rtt_ns} ns each)",
            l.flow
        );
    }
}

/// Compact, order-preserving projection of the run's PFC control traffic:
/// every XOFF/XON threshold crossing and every pause/resume applied at a
/// host NIC or a switch egress port, with timestamps.
fn pfc_event_log(events: &[(u64, TraceEvent)]) -> Vec<(u64, String)> {
    events
        .iter()
        .filter_map(|(at, ev)| match ev {
            TraceEvent::PfcXoff { sw, port, prio, on, .. } => {
                Some((*at, format!("xoff sw{sw} p{port} q{prio} {on}")))
            }
            TraceEvent::PfcPause { host, prio, on } => {
                Some((*at, format!("pause h{host} q{prio} {on}")))
            }
            TraceEvent::PfcSwPause { sw, port, prio, on } => {
                Some((*at, format!("swpause sw{sw} p{port} q{prio} {on}")))
            }
            _ => None,
        })
        .collect()
}

/// PFC-storm case: a congested cross-rack incast (which keeps the PFC
/// machinery pausing and resuming throughout) plus an 800 µs uplink
/// outage. The fabric must (a) propagate pauses upstream past the first
/// switch, (b) release every pause it took — in an order that repeats
/// bit-identically, engine resume loops walk ports in fixed index order —
/// (c) wedge no flow, and (d) leave the degraded window attributable by
/// `dcn_stats::recovery`.
#[test]
fn pfc_storm_during_uplink_outage_recovers_deterministically() {
    let topo = TopoKind::FatTree { k: 4, edge_gbps: 10 };
    // 6 cross-rack senders blast 300KB each at host 6 almost at once: the
    // destination ToR port crosses XOFF immediately and the pause front
    // climbs into the aggregation layer.
    let flows = ppt::workloads::incast_burst(6, 300_000, 1_000);
    let run = |sanitize: bool| {
        let faults = FaultSpec::new(23).cmd(FaultCmd::HostUplinkDown {
            host: 0,
            from: SimTime(400_000),
            until: SimTime(1_200_000),
        });
        let mut exp = Experiment::new(topo, Scheme::Ppt, flows.clone()).with_faults(faults);
        exp.env.pfc = true;
        run_experiment_traced_with(&exp, move |t| {
            if sanitize {
                t.sim.set_sanitizer(ppt::netsim::SanLevel::PerEpoch);
            }
        })
    };

    let (outcome, trace) = run(false);

    // (c) no flow is permanently wedged by the storm + outage combination.
    assert_eq!(
        outcome.report.flows_completed, outcome.report.flows_total,
        "flows wedged under PFC + outage"
    );
    assert!(outcome.report.faults.max_stall.as_nanos() >= 800_000, "outage window not recorded");

    // (a) pauses exist and propagate upstream: host NICs paused at the
    // edge AND at least one switch-to-switch pause (an aggregation egress
    // frozen by a downstream ToR's XOFF).
    let log = pfc_event_log(&trace.events);
    assert!(
        log.iter().any(|(_, e)| e.starts_with("pause") && e.ends_with("true")),
        "no host NIC was ever paused"
    );
    assert!(
        log.iter().any(|(_, e)| e.starts_with("swpause") && e.ends_with("true")),
        "pause front never climbed past the first switch"
    );

    // (b) every pause released: replaying the log leaves no port paused.
    let mut live: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (_, e) in &log {
        let (key, on) = e.rsplit_once(' ').unwrap();
        if on == "true" {
            live.insert(key.to_string());
        } else {
            live.remove(key);
        }
    }
    assert!(live.is_empty(), "pauses never released: {live:?}");

    // (b') the resume order is deterministic: an identical rerun replays
    // the exact same pause/resume sequence, timestamps included.
    let (_, trace2) = run(false);
    assert_eq!(log, pfc_event_log(&trace2.events), "PFC pause/resume order is nondeterministic");

    // Acceptance gate: a sanitized PFC fault run is simsan-clean, and the
    // sanitizer changes nothing the trace can see.
    let (san_outcome, san_trace) = run(true);
    assert!(
        san_outcome.sim.san_violations().is_empty(),
        "sanitized PFC fault run: {:?}",
        san_outcome.sim.san_violations()
    );
    assert_eq!(log, pfc_event_log(&san_trace.events), "simsan perturbed the PFC sequence");

    // (d) recovery attribution: the analysis pass sees exactly the one
    // 800 µs outage and bounds the degraded window with it.
    let rec = analyze_recovery(&trace.events, outcome.report.faults);
    assert_eq!(rec.outages.len(), 1, "expected exactly one attributed outage");
    assert!(
        rec.total_outage_ns() >= 800_000,
        "attributed outage too short: {} ns",
        rec.total_outage_ns()
    );
}

/// The fault layer draws from its own dedicated RNG stream: a run with a
/// fault schedule and the same run repeated must be bit-identical, and a
/// loss-free schedule must not perturb the workload RNG at all.
#[test]
fn fault_runs_repeat_bit_identically() {
    let topo = TopoKind::Star { n: 5, rate_gbps: 10, delay_us: 20 };
    let run = || {
        let flows = workload(topo, 40, 13);
        let faults = FaultSpec::new(17).with_data_loss(0.02).cmd(FaultCmd::SwitchStall {
            switch: 0,
            at: SimTime(1_000_000),
            duration: ppt::netsim::SimDuration::from_micros(300),
        });
        let outcome =
            run_experiment(&Experiment::new(topo, Scheme::Ppt, flows).with_faults(faults));
        let fcts: Vec<(u64, u64)> =
            outcome.fct.records().iter().map(|r| (r.size_bytes, r.fct.as_nanos())).collect();
        (fcts, outcome.report.faults)
    };
    let (a_fcts, a_faults) = run();
    let (b_fcts, b_faults) = run();
    assert_eq!(a_fcts, b_fcts, "fault run is nondeterministic");
    assert_eq!(a_faults, b_faults, "fault counters diverged between identical runs");
    assert!(a_faults.fault_drops > 0 && a_faults.max_stall.as_nanos() >= 300_000);
}
