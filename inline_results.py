#!/usr/bin/env python3
"""Append every results/*.txt verbatim under the MEASURED-RESULTS marker."""
import glob, re

with open("EXPERIMENTS.md") as f:
    doc = f.read()
marker = "<!-- MEASURED-RESULTS -->"
head = doc.split(marker)[0] + marker + "\n\n"
parts = []
for path in sorted(glob.glob("results/*.txt")):
    with open(path) as f:
        body = f.read().rstrip()
    if not body:
        continue
    parts.append(f"### `{path}`\n\n```text\n{body}\n```\n")
with open("EXPERIMENTS.md", "w") as f:
    f.write(head + "\n".join(parts))
print(f"inlined {len(parts)} result files")
